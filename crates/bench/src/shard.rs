//! Multi-host sharding of the table targets: shard artifacts and their
//! byte-exact reassembly.
//!
//! `repro_figures --shard i/m --json DIR <target>` computes only the table
//! rows shard `i` owns (round-robin by original row index, seeds
//! unchanged — see [`dcn_core::sweep::ShardSpec`]) and writes them as
//! `BENCH_<target>.shard-i-of-m.json`. `repro_figures --merge-json DIR
//! <target>` gathers all `m` shard files, re-interleaves the rows (row `p`
//! of the full table is row `p / m` of shard `p % m`), and writes the
//! merged `BENCH_<target>.json`.
//!
//! The merge contract is **byte identity**: for deterministic tables (all
//! cost columns; the CI smoke diffs the `demand` target), the merged file
//! equals the file an unsharded run writes, byte for byte. That holds
//! because (a) sharded runs derive every row's seeds from its original
//! index, (b) titles/columns are identical across shards, and (c) the
//! [`parse_table`] → [`SimpleTable::to_json`] round trip is exact — JSON
//! floats are emitted via Rust's shortest-round-trip `Display` and parsed
//! back with `str::parse`, which recovers the identical `f64`.

use crate::SimpleTable;
use dcn_core::sweep::ShardSpec;
use std::path::{Path, PathBuf};

/// File name of one shard's artifact for `target`.
pub fn shard_file_name(target: &str, shard: ShardSpec) -> String {
    format!(
        "BENCH_{target}.shard-{}-of-{}.json",
        shard.index(),
        shard.count()
    )
}

/// File name of the merged (= unsharded) artifact for `target`.
pub fn merged_file_name(target: &str) -> String {
    format!("BENCH_{target}.json")
}

/// Merges shard tables (each tagged with its [`ShardSpec`]) back into the
/// full table: validates one table per shard index with a consistent shard
/// count and identical title/columns, then re-interleaves rows
/// round-robin. Fails on any gap — a missing shard, or shard sizes that
/// cannot come from one grid.
pub fn merge_tables(parts: Vec<(ShardSpec, SimpleTable)>) -> Result<SimpleTable, String> {
    let count = parts
        .first()
        .map(|(s, _)| s.count())
        .ok_or("no shard tables to merge")?;
    let mut by_index: Vec<Option<SimpleTable>> = (0..count).map(|_| None).collect();
    for (shard, table) in parts {
        if shard.count() != count {
            return Err(format!(
                "inconsistent shard counts: {} vs {count}",
                shard.count()
            ));
        }
        if by_index[shard.index()].is_some() {
            return Err(format!("duplicate shard {shard}"));
        }
        by_index[shard.index()] = Some(table);
    }
    let tables: Vec<SimpleTable> = by_index
        .into_iter()
        .enumerate()
        .map(|(i, t)| t.ok_or(format!("missing shard {i}-of-{count}")))
        .collect::<Result<_, _>>()?;

    let reference = &tables[0];
    for t in &tables[1..] {
        if t.title != reference.title {
            return Err(format!(
                "shard titles disagree: {:?} vs {:?}",
                t.title, reference.title
            ));
        }
        if t.columns != reference.columns {
            return Err("shard column sets disagree".into());
        }
    }

    let total: usize = tables.iter().map(|t| t.rows.len()).sum();
    let mut rows = Vec::with_capacity(total);
    let mut cursors = vec![0usize; count];
    for p in 0..total {
        let shard_of_row = p % count;
        let row = tables[shard_of_row]
            .rows
            .get(cursors[shard_of_row])
            .ok_or(format!(
                "shard {shard_of_row}-of-{count} is short: no row for grid position {p} \
                 (shard sizes do not interleave into one grid)"
            ))?;
        cursors[shard_of_row] += 1;
        rows.push(row.clone());
    }
    // Every shard's rows must be consumed exactly.
    for (i, (cursor, t)) in cursors.iter().zip(&tables).enumerate() {
        if *cursor != t.rows.len() {
            return Err(format!(
                "shard {i}-of-{count} has {} surplus row(s)",
                t.rows.len() - cursor
            ));
        }
    }
    // Quarantine notes travel with their rows: local row `r` of shard `i`
    // sits at grid position `r * count + i` after re-interleaving.
    let mut statuses = Vec::new();
    for (i, t) in tables.iter().enumerate() {
        for (local, note) in &t.statuses {
            if *local >= t.rows.len() {
                return Err(format!(
                    "shard {i}-of-{count} status points at row {local}, \
                     but the shard has only {} row(s)",
                    t.rows.len()
                ));
            }
            statuses.push((local * count + i, note.clone()));
        }
    }
    statuses.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(SimpleTable {
        title: reference.title.clone(),
        columns: reference.columns.clone(),
        rows,
        statuses,
    })
}

/// Scans `dir` for `target`'s shard files, parses and merges them, and
/// returns the merged table together with the paths it consumed. Every
/// failure is a structured error naming the offending file (and, for parse
/// errors, the byte offset) — a corrupt or inconsistent shard set must
/// never panic or silently drop rows.
pub fn merge_target_dir(dir: &Path, target: &str) -> Result<(SimpleTable, Vec<PathBuf>), String> {
    let prefix = format!("BENCH_{target}.shard-");
    let mut parts: Vec<(ShardSpec, SimpleTable)> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut paths = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(spec) = name
            .strip_prefix(&prefix)
            .and_then(|rest| rest.strip_suffix(".json"))
        else {
            continue;
        };
        // File-name form is "i-of-m".
        let Some((i, m)) = spec.split_once("-of-") else {
            return Err(format!("malformed shard file name {name:?}"));
        };
        let shard = ShardSpec::parse(&format!("{i}/{m}"))
            .map_err(|e| format!("shard file {name:?}: {e}"))?;
        // Pre-validate against what is already collected so the error can
        // name both files involved (merge_tables only sees the tables).
        if let Some((first, first_name)) = parts
            .first()
            .map(|(s, _)| s)
            .zip(names.first())
            .filter(|(s, _)| s.count() != shard.count())
        {
            return Err(format!(
                "mixed shard counts: {name:?} is of {} shard(s) but {first_name:?} \
                 is of {} shard(s)",
                shard.count(),
                first.count()
            ));
        }
        if let Some(dup) = parts
            .iter()
            .position(|(s, _)| s.index() == shard.index())
            .map(|p| &names[p])
        {
            return Err(format!(
                "duplicate shard index {}: {name:?} vs {dup:?}",
                shard.index()
            ));
        }
        let text = std::fs::read_to_string(entry.path()).map_err(|e| format!("{name}: {e}"))?;
        let table = parse_table(&text).map_err(|e| format!("{name}: {e}"))?;
        parts.push((shard, table));
        names.push(name.to_string());
        paths.push(entry.path());
    }
    if parts.is_empty() {
        return Err(format!(
            "no {prefix}*.json shard files in {}",
            dir.display()
        ));
    }
    paths.sort();
    merge_tables(parts).map(|t| (t, paths))
}

/// Parses the JSON that [`SimpleTable::to_json`] emits:
/// `{"title": str, "columns": [str], "rows": [[str, [num]]],
/// "statuses"?: [[int, str]]}`.
///
/// This is the one place the workspace parses JSON back (merging shard
/// artifacts); the grammar is the emitter's, handled exactly — strings
/// with the emitter's escape set, floats via `str::parse` (lossless
/// against shortest-round-trip output), no trailing garbage, no duplicate
/// keys. Every error names the byte offset it tripped on, so a corrupt
/// artifact points straight at the damage.
pub fn parse_table(text: &str) -> Result<SimpleTable, String> {
    if let Some(msg) = dcn_util::failpoint::eval("shard.parse") {
        return Err(msg);
    }
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut title = None;
    let mut columns = None;
    let mut rows = None;
    let mut statuses = None;
    loop {
        p.skip_ws();
        let key_at = p.pos;
        let key = p.parse_string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let dup = match key.as_str() {
            "title" => title.replace(p.parse_string()?).is_some(),
            "columns" => columns
                .replace(p.parse_array(|p| p.parse_string())?)
                .is_some(),
            "rows" => rows
                .replace(p.parse_array(|p| {
                    // One row: ["label", [v, v, ...]]
                    p.expect(b'[')?;
                    p.skip_ws();
                    let label = p.parse_string()?;
                    p.skip_ws();
                    p.expect(b',')?;
                    p.skip_ws();
                    let values = p.parse_array(|p| p.parse_number())?;
                    p.skip_ws();
                    p.expect(b']')?;
                    Ok((label, values))
                })?)
                .is_some(),
            "statuses" => statuses
                .replace(p.parse_array(|p| {
                    // One note: [row index, "note"]
                    p.expect(b'[')?;
                    p.skip_ws();
                    let index = p.parse_usize()?;
                    p.skip_ws();
                    p.expect(b',')?;
                    p.skip_ws();
                    let note = p.parse_string()?;
                    p.skip_ws();
                    p.expect(b']')?;
                    Ok((index, note))
                })?)
                .is_some(),
            other => {
                return Err(format!(
                    "unexpected key {other:?} at byte {key_at} in table JSON"
                ))
            }
        };
        if dup {
            return Err(format!("duplicate key {key:?} at byte {key_at}"));
        }
        p.skip_ws();
        match p.next()? {
            b',' => continue,
            b'}' => break,
            c => {
                return Err(format!(
                    "expected ',' or '}}' at byte {}, got {:?}",
                    p.pos - 1,
                    c as char
                ))
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data after table JSON at byte {}", p.pos));
    }
    Ok(SimpleTable {
        title: title.ok_or("table JSON missing \"title\"")?,
        columns: columns.ok_or("table JSON missing \"columns\"")?,
        rows: rows.ok_or("table JSON missing \"rows\"")?,
        statuses: statuses.unwrap_or_default(),
    })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn next(&mut self) -> Result<u8, String> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| format!("unexpected end of JSON at byte {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        let got = self.next()?;
        if got != want {
            return Err(format!(
                "expected {:?} at byte {}, got {:?}",
                want as char,
                self.pos - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Consume raw UTF-8 up to the next quote/escape in one slice.
            let start = self.pos;
            while !matches!(self.bytes.get(self.pos), None | Some(b'"') | Some(b'\\')) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in JSON string at byte {start}"))?,
            );
            match self.next()? {
                b'"' => return Ok(out),
                b'\\' => match self.next()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let at = self.pos;
                            let d = (self.next()? as char)
                                .to_digit(16)
                                .ok_or(format!("invalid \\u escape at byte {at}"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or(format!("invalid \\u code point at byte {}", self.pos))?,
                        );
                    }
                    e => {
                        return Err(format!(
                            "unsupported escape \\{} at byte {}",
                            e as char,
                            self.pos - 1
                        ))
                    }
                },
                _ => unreachable!("scan stopped on quote or backslash"),
            }
        }
    }

    /// A non-negative integer (used for `statuses` row indices) — parsed
    /// exactly, so the round trip back through the emitter is identical.
    fn parse_usize(&mut self) -> Result<usize, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<usize>()
            .map_err(|_| format!("invalid row index {text:?} at byte {start}"))
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        // "null" is how the emitter writes non-finite values.
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(f64::NAN);
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn parse_array<T>(
        &mut self,
        mut element: impl FnMut(&mut Self) -> Result<T, String>,
    ) -> Result<Vec<T>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            out.push(element(self)?);
            self.skip_ws();
            match self.next()? {
                b',' => continue,
                b']' => return Ok(out),
                c => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos - 1,
                        c as char
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> SimpleTable {
        SimpleTable {
            title: "Scaling: α=10, λ = drift \"quoted\" \\ slash\nnewline".into(),
            columns: vec!["R-BMA Mreq/s".into(), "ratio".into()],
            rows: vec![
                ("λ=0".into(), vec![22.75321, 1.0]),
                ("row2".into(), vec![-0.5, 1e-9]),
                ("row3".into(), vec![123456789.0, 0.3333333333333333]),
            ],
            statuses: Vec::new(),
        }
    }

    #[test]
    fn parse_round_trips_to_json_byte_identically() {
        let table = sample_table();
        let json = table.to_json();
        let back = parse_table(&json).expect("parse emitted JSON");
        assert_eq!(back.to_json(), json, "round trip must be byte-identical");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "{\"title\": 3}",
            "{\"title\": \"t\"} extra",
            "{\"bogus\": \"x\"}",
        ] {
            assert!(parse_table(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn statuses_survive_the_json_round_trip() {
        let mut table = sample_table();
        table.statuses = vec![
            (0, "2 of 8 jobs quarantined".into()),
            (2, "degraded".into()),
        ];
        let json = table.to_json();
        assert!(json.contains("\"statuses\""));
        let back = parse_table(&json).expect("parse");
        assert_eq!(back.statuses, table.statuses);
        assert_eq!(back.to_json(), json, "round trip must be byte-identical");
        // And a failure-free table omits the key entirely (historical bytes).
        assert!(!sample_table().to_json().contains("statuses"));
    }

    #[test]
    fn merge_reindexes_statuses_to_grid_positions() {
        let full = sample_table();
        let mut shard0 = SimpleTable {
            title: full.title.clone(),
            columns: full.columns.clone(),
            rows: vec![full.rows[0].clone(), full.rows[2].clone()],
            statuses: vec![(1, "late".into())],
        };
        let shard1 = SimpleTable {
            title: full.title.clone(),
            columns: full.columns.clone(),
            rows: vec![full.rows[1].clone()],
            statuses: vec![(0, "early".into())],
        };
        let merged = merge_tables(vec![
            (ShardSpec::new(0, 2), shard0.clone()),
            (ShardSpec::new(1, 2), shard1),
        ])
        .expect("merge");
        // Local row 1 of shard 0 → grid 2; local row 0 of shard 1 → grid 1.
        assert_eq!(
            merged.statuses,
            vec![(1, "early".to_string()), (2, "late".to_string())]
        );
        // A status pointing past the shard's rows is a structured error.
        shard0.statuses = vec![(7, "dangling".into())];
        let err = merge_tables(vec![(ShardSpec::new(0, 1), shard0)]).unwrap_err();
        assert!(err.contains("row 7"), "{err}");
    }

    #[test]
    fn truncated_artifacts_error_without_panicking() {
        // Kill-mid-write leaves a prefix: every strict prefix of a valid
        // artifact must come back as Err (naming a byte offset for the
        // common "ran out of input" case), never a panic or a silent Ok.
        let mut table = sample_table();
        table.statuses = vec![(1, "note".into())];
        let json = table.to_json();
        for cut in 0..json.len() {
            if !json.is_char_boundary(cut) {
                continue;
            }
            let err = parse_table(&json[..cut]).expect_err("prefix must not parse");
            assert!(!err.is_empty());
        }
        assert!(parse_table(&json[..json.len() - 1])
            .unwrap_err()
            .contains("byte"));
    }

    #[test]
    fn corrupted_bytes_error_or_parse_but_never_panic() {
        // Single-byte corruption: overwrite each position with a hostile
        // byte. Many mutants still parse (flipping a digit), some fail —
        // either way the parser must return, not panic or loop.
        let json = sample_table().to_json();
        for evil in [b'{', b'}', b'"', b'\\', b',', b'x', 0xFFu8] {
            for i in 0..json.len() {
                let mut bytes = json.clone().into_bytes();
                bytes[i] = evil;
                if let Ok(mutant) = String::from_utf8(bytes) {
                    let _ = parse_table(&mutant);
                }
            }
        }
    }

    #[test]
    fn duplicate_keys_are_rejected_with_an_offset() {
        let err = parse_table(r#"{"title": "a", "title": "b"}"#).unwrap_err();
        assert!(err.contains("duplicate key \"title\""), "{err}");
        assert!(err.contains("byte 15"), "{err}");
    }

    #[test]
    fn merge_reassembles_round_robin_rows() {
        let full = sample_table();
        // Shard by row index round-robin, as the table targets do.
        let split = |i: usize, m: usize| SimpleTable {
            title: full.title.clone(),
            columns: full.columns.clone(),
            rows: full
                .rows
                .iter()
                .enumerate()
                .filter(|(r, _)| ShardSpec::new(i, m).owns(*r))
                .map(|(_, row)| row.clone())
                .collect(),
            statuses: Vec::new(),
        };
        for m in 1..=3usize {
            let parts: Vec<_> = (0..m)
                .map(|i| (ShardSpec::new(i, m), split(i, m)))
                .collect();
            let merged = merge_tables(parts).expect("merge");
            assert_eq!(merged.to_json(), full.to_json(), "m={m}");
        }
    }

    #[test]
    fn merge_rejects_inconsistent_parts() {
        let t = sample_table();
        // Missing shard 1.
        let only0 = vec![(ShardSpec::new(0, 2), t.clone())];
        assert!(merge_tables(only0).is_err());
        // Title mismatch.
        let mut other = t.clone();
        other.title = "different".into();
        let parts = vec![
            (ShardSpec::new(0, 2), t.clone()),
            (ShardSpec::new(1, 2), other),
        ];
        assert!(merge_tables(parts).is_err());
        // Duplicate shard index.
        let parts = vec![
            (ShardSpec::new(0, 2), t.clone()),
            (ShardSpec::new(0, 2), t.clone()),
        ];
        assert!(merge_tables(parts).is_err());
        assert!(merge_tables(Vec::new()).is_err());
    }

    #[test]
    fn sharded_demand_sweep_merges_byte_identically() {
        // The real contract behind the CI smoke step: run the (fully
        // deterministic) demand target unsharded and as two shards; the
        // merged JSON must equal the unsharded JSON byte for byte.
        let full = crate::demand_sweep(0.005, 1, ShardSpec::full());
        let parts: Vec<_> = (0..2)
            .map(|i| {
                let shard = ShardSpec::new(i, 2);
                (shard, crate::demand_sweep(0.005, 1, shard))
            })
            .collect();
        let merged = merge_tables(parts).expect("merge");
        assert_eq!(merged.to_json(), full.to_json());
    }

    #[test]
    fn merge_target_dir_reads_shard_files() {
        let dir = std::env::temp_dir().join(format!("rdcn-shard-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let full = sample_table();
        for i in 0..2usize {
            let shard = ShardSpec::new(i, 2);
            let part = SimpleTable {
                title: full.title.clone(),
                columns: full.columns.clone(),
                rows: full
                    .rows
                    .iter()
                    .enumerate()
                    .filter(|(r, _)| shard.owns(*r))
                    .map(|(_, row)| row.clone())
                    .collect(),
                statuses: Vec::new(),
            };
            std::fs::write(dir.join(shard_file_name("demo", shard)), part.to_json())
                .expect("write shard");
        }
        let (merged, paths) = merge_target_dir(&dir, "demo").expect("merge dir");
        assert_eq!(paths.len(), 2);
        assert_eq!(merged.to_json(), full.to_json());
        assert!(merge_target_dir(&dir, "absent").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_target_dir_names_the_offending_file() {
        let dir = std::env::temp_dir().join(format!("rdcn-shard-harden-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let full = sample_table();

        // A truncated shard file: the error must carry the file name and
        // the byte offset the parser tripped on.
        let name0 = shard_file_name("mangled", ShardSpec::new(0, 2));
        let json = full.to_json();
        std::fs::write(dir.join(&name0), &json[..json.len() / 2]).expect("write");
        let err = merge_target_dir(&dir, "mangled").unwrap_err();
        assert!(err.contains(&name0), "{err}");
        assert!(err.contains("byte"), "{err}");

        // Mixed shard counts: both file names appear in the error.
        std::fs::write(dir.join(&name0), &json).expect("write");
        let name1 = shard_file_name("mangled", ShardSpec::new(1, 3));
        std::fs::write(dir.join(&name1), &json).expect("write");
        let err = merge_target_dir(&dir, "mangled").unwrap_err();
        assert!(err.contains("mixed shard counts"), "{err}");
        assert!(err.contains(&name0) && err.contains(&name1), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

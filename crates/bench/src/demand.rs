//! The `demand` repro target: the **mis-estimation sweep**.
//!
//! A demand-aware static design (COUDER-style, arXiv:2010.00090) is only as
//! good as its forecast. This sweep provisions the
//! [`DemandAware`](dcn_demand::DemandAware) baseline
//! from a *base* ProjecToR-style matrix, then serves traffic sampled from
//! `blend(base, drifted, λ)` for growing drift λ — at λ = 0 the forecast is
//! perfect, at λ = 1 traffic follows an independent matrix the design never
//! saw. The table reports, per λ: the point-forecast baseline, a hedged
//! variant provisioned against *both* matrices, online R-BMA (which adapts
//! and should degrade far less), and the Oblivious envelope. Costs are
//! routing costs, as in the paper's panels (a) — the static designs pay no
//! reconfiguration by construction; R-BMA's reconfiguration spend (the
//! price of its adaptivity) is reported in its own column.
//!
//! Expected shape (asserted by tests at smoke scale): the static baseline
//! beats Oblivious handily on its own matrix and decays toward it as λ
//! grows; R-BMA's saving is nearly flat in λ (i.i.d. sampling looks the
//! same to an online algorithm regardless of which matrix it comes from),
//! so the static design loses ground to it with every step of drift;
//! hedging holds up the worst case at the price of the best case.

use crate::SimpleTable;
use dcn_core::algorithms::AlgorithmKind;
use dcn_core::sweep::run_jobs_supervised;
use dcn_core::sweep::{resolve_threads, Job, JobFailure, ShardSpec, Supervisor};
use dcn_demand::{DemandMatrix, MicrosoftParams};
use dcn_topology::{builders, DistanceMatrix};
use dcn_traces::TraceSpec;
use dcn_util::rngx::derive_seed;
use std::sync::Arc;

/// Runs the mis-estimation sweep at `scale` times the nominal 400k-request
/// workload; returns one row per drift level λ. `threads` is the
/// work-stealing worker count (`0` = auto); `shard` selects which λ rows
/// (by original index, so all seeds are unchanged) this invocation
/// computes — the sweep is fully deterministic, so shard artifacts merge
/// byte-identically into the unsharded table.
pub fn demand_sweep(scale: f64, threads: usize, shard: ShardSpec) -> SimpleTable {
    demand_sweep_supervised(scale, threads, shard, &Supervisor::scoped("demand")).0
}

/// [`demand_sweep`] under supervised execution: each job runs inside the
/// retry/quarantine envelope of `sup`, and (with a journal installed)
/// completed jobs replay on `--resume` instead of re-running. When every
/// job completes, the table is **byte-identical** to the historical
/// unsupervised artifact; when a job exhausts its retries, the affected
/// row's dependent cells degrade to NaN (serialized `null`), the row gets
/// a `statuses` note, and the structured [`JobFailure`] records are
/// returned for the quarantine report.
pub fn demand_sweep_supervised(
    scale: f64,
    threads: usize,
    shard: ShardSpec,
    sup: &Supervisor,
) -> (SimpleTable, Vec<JobFailure>) {
    assert!(scale > 0.0, "scale factor must be positive");
    let racks = 50;
    let b = 6;
    let alpha = 10u64;
    let reps = 2u64;
    let len = ((400_000.0 * scale).round() as usize).max(2_000);
    let net = builders::fat_tree_with_racks(racks);
    let dm = Arc::new(DistanceMatrix::between_racks_parallel(
        &net,
        resolve_threads(threads),
    ));

    // The forecast the static design is built on, and the independent
    // matrix the served traffic drifts toward (normalized so blends are
    // probability mixtures).
    let base = DemandMatrix::microsoft(racks, MicrosoftParams::default(), 0xBA5E).normalized();
    let drifted = DemandMatrix::microsoft(racks, MicrosoftParams::default(), 0xD21F7).normalized();

    let algorithms = [
        AlgorithmKind::demand_aware(base.clone()),
        AlgorithmKind::demand_aware_hedged(vec![base.clone(), drifted.clone()]),
        AlgorithmKind::Rbma { lazy: true },
        AlgorithmKind::Oblivious,
    ];

    let lambdas = [0.0, 0.25, 0.5, 0.75, 1.0];
    // One flat job grid over the *owned* λ rows: (λ × algorithm ×
    // repetition), fanned out together. Seeds use the original λ index, so
    // a sharded run computes exactly the rows the unsharded run would.
    let owned: Vec<(usize, f64)> = lambdas
        .iter()
        .copied()
        .enumerate()
        .filter(|(li, _)| shard.owns(*li))
        .collect();
    let mut jobs = Vec::new();
    for &(li, lambda) in &owned {
        let served = DemandMatrix::blend(&base, &drifted, lambda);
        for algorithm in &algorithms {
            for rep in 0..reps {
                jobs.push(Job {
                    algorithm: algorithm.clone(),
                    b,
                    alpha,
                    seed: derive_seed(0xA3, rep),
                    checkpoints: vec![],
                    trace: TraceSpec::matrix(
                        served.clone(),
                        len,
                        derive_seed(0xDE3D, (li as u64) * reps + rep),
                    ),
                });
            }
        }
    }
    let outcomes = run_jobs_supervised(&dm, &jobs, threads, sup);
    let failures: Vec<JobFailure> = outcomes
        .iter()
        .filter_map(|o| o.failure().cloned())
        .collect();
    let reports: Vec<Option<&dcn_core::RunReport>> = outcomes.iter().map(|o| o.report()).collect();

    let mut rows = Vec::new();
    let mut statuses = Vec::new();
    let row_jobs = algorithms.len() * reps as usize;
    for (oi, &(_, lambda)) in owned.iter().enumerate() {
        // Mean total routing / total cost per algorithm across repetitions.
        // A quarantined repetition poisons its algorithm's cells to NaN
        // rather than silently averaging over fewer samples.
        let mean = |ai: usize, f: &dyn Fn(&dcn_core::RunReport) -> f64| -> f64 {
            let start = (oi * algorithms.len() + ai) * reps as usize;
            let slice = &reports[start..start + reps as usize];
            if slice.iter().any(|r| r.is_none()) {
                return f64::NAN;
            }
            slice.iter().map(|r| f(r.expect("checked"))).sum::<f64>() / reps as f64
        };
        let da = mean(0, &|r| r.total.routing_cost as f64);
        let hedged = mean(1, &|r| r.total.routing_cost as f64);
        let rbma = mean(2, &|r| r.total.routing_cost as f64);
        let rbma_reconfig = mean(2, &|r| r.total.reconfig_cost as f64);
        let oblivious = mean(3, &|r| r.total.routing_cost as f64);
        rows.push((
            format!("λ={lambda}"),
            vec![
                da,
                hedged,
                rbma,
                rbma_reconfig,
                oblivious,
                1.0 - da / oblivious,
                1.0 - rbma / oblivious,
            ],
        ));
        let start = oi * row_jobs;
        let failed = reports[start..start + row_jobs]
            .iter()
            .filter(|r| r.is_none())
            .count();
        if failed > 0 {
            statuses.push((
                rows.len() - 1,
                format!("{failed} of {row_jobs} jobs quarantined; affected cells are null"),
            ));
        }
    }
    let table = SimpleTable {
        title: format!(
            "Demand mis-estimation sweep: static forecast vs drifting traffic \
             (microsoft matrices, {racks} racks, b={b}, α={alpha}, {len} requests, λ = drift)"
        ),
        columns: vec![
            "DemandAware routing".into(),
            "Hedged routing".into(),
            "R-BMA routing".into(),
            "R-BMA reconfig".into(),
            "Oblivious routing".into(),
            "DA saving".into(),
            "R-BMA saving".into(),
        ],
        rows,
        statuses,
    };
    (table, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_and_positive_costs() {
        let t = demand_sweep(0.01, 0, ShardSpec::full());
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.columns.len(), 7);
        for (label, v) in &t.rows {
            assert!(v[..5].iter().all(|&x| x > 0.0), "{label}: {v:?}");
        }
        assert!(t.to_markdown().contains("λ=0"));
    }

    #[test]
    fn baseline_beats_oblivious_on_its_own_matrix_then_decays() {
        let t = demand_sweep(0.01, 0, ShardSpec::full());
        let da_saving: Vec<f64> = t.rows.iter().map(|(_, v)| v[5]).collect();
        assert!(
            da_saving[0] > 0.15,
            "on its own matrix the static design must clearly beat oblivious: {da_saving:?}"
        );
        assert!(
            da_saving[0] > *da_saving.last().expect("rows") + 0.05,
            "drift must erode the static design's saving: {da_saving:?}"
        );
    }

    #[test]
    fn rbma_degrades_less_than_the_static_baseline() {
        let t = demand_sweep(0.01, 0, ShardSpec::full());
        let gap = |row: &(String, Vec<f64>)| row.1[6] - row.1[5];
        let gap_first = gap(&t.rows[0]);
        let gap_last = gap(t.rows.last().expect("rows"));
        assert!(
            gap_last > gap_first + 0.05,
            "R-BMA's edge over the static design must grow with drift \
             (gap {gap_first:.3} -> {gap_last:.3})"
        );
    }

    #[test]
    fn hedging_protects_the_drifted_end() {
        let t = demand_sweep(0.01, 0, ShardSpec::full());
        let last = &t.rows.last().expect("rows").1;
        let (hedged, point) = (last[1], last[0]);
        assert!(
            hedged < point,
            "at full drift the hedged design must out-serve the point forecast: \
             {hedged} vs {point}"
        );
    }
}

//! The committed performance ledger: standard-point serve throughput
//! (Mreq/s) per algorithm per PR, frozen as `BENCH_LEDGER.json` at the
//! repository root so throughput history travels with the code instead of
//! living only in CI artifacts and ROADMAP prose.
//!
//! The *standard point* is the configuration every headline number in
//! ROADMAP.md and README.md has been quoted at since the batching work:
//! streamed Zipf(s=1.2), 100 racks, b=12, α=10. `repro_figures ledger
//! --pr N` measures the current tree at that point and upserts one row per
//! (algorithm, serve-mode) — re-running for the same PR overwrites rather
//! than duplicates, so the file stays one row per measurement coordinate.

use dcn_core::algorithms::AlgorithmKind;
use dcn_core::ServeMode;
use dcn_topology::{builders, DistanceMatrix};
use dcn_traces::TraceSpec;
use dcn_util::json::{parse_json, to_json_string, JsonValue};
use serde::Serialize;
use std::sync::Arc;

/// One measured point: `algorithm` at `mode` in PR `pr` ran at
/// `mreq_per_sec` million requests per second on the standard point.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct LedgerEntry {
    /// PR number the measurement was taken at.
    pub pr: u64,
    /// Algorithm label (`R-BMA`, `BMA`, ...).
    pub algorithm: String,
    /// Serve-mode tag: `batched` (the production default path at that PR),
    /// `unbatched` (`batch_size = 1`), `unsorted-batched`, ...
    pub mode: String,
    /// Serve-loop throughput in million requests per second.
    pub mreq_per_sec: f64,
}

/// The whole ledger; entries are kept sorted by (pr, algorithm, mode).
#[derive(Clone, Debug, Default, Serialize)]
pub struct Ledger {
    /// All measurements, every PR.
    pub entries: Vec<LedgerEntry>,
}

impl Ledger {
    /// Parses the committed JSON form.
    pub fn from_json(text: &str) -> Result<Ledger, String> {
        let v = parse_json(text)?;
        let entries = v
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or("ledger: missing array field entries")?;
        let mut out = Ledger::default();
        for e in entries {
            let str_field = |key: &str| {
                e.get(key)
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("ledger entry: missing string field {key}"))
            };
            out.entries.push(LedgerEntry {
                pr: e
                    .get("pr")
                    .and_then(JsonValue::as_u64)
                    .ok_or("ledger entry: missing u64 field pr")?,
                algorithm: str_field("algorithm")?,
                mode: str_field("mode")?,
                mreq_per_sec: e
                    .get("mreq_per_sec")
                    .and_then(JsonValue::as_f64)
                    .ok_or("ledger entry: missing number field mreq_per_sec")?,
            });
        }
        out.sort();
        Ok(out)
    }

    /// Compact JSON form (the committed representation).
    pub fn to_json(&self) -> String {
        to_json_string(self).expect("ledger serialization cannot fail")
    }

    fn sort(&mut self) {
        self.entries
            .sort_by(|a, b| (a.pr, &a.algorithm, &a.mode).cmp(&(b.pr, &b.algorithm, &b.mode)));
    }

    /// Inserts `entry`, replacing any existing row with the same
    /// (pr, algorithm, mode) coordinate.
    pub fn upsert(&mut self, entry: LedgerEntry) {
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.pr == entry.pr && e.algorithm == entry.algorithm && e.mode == entry.mode)
        {
            *existing = entry;
        } else {
            self.entries.push(entry);
        }
        self.sort();
    }

    /// Markdown rendering: one row per (algorithm, mode), one column per PR.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write;
        let mut prs: Vec<u64> = self.entries.iter().map(|e| e.pr).collect();
        prs.sort_unstable();
        prs.dedup();
        let mut coords: Vec<(&str, &str)> = self
            .entries
            .iter()
            .map(|e| (e.algorithm.as_str(), e.mode.as_str()))
            .collect();
        coords.sort_unstable();
        coords.dedup();
        let mut out = String::from("### Performance ledger (standard point, Mreq/s)\n\n");
        let _ = write!(out, "| algorithm | mode |");
        for pr in &prs {
            let _ = write!(out, " PR {pr} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|---|");
        for _ in &prs {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for (algorithm, mode) in coords {
            let _ = write!(out, "| {algorithm} | {mode} |");
            for &pr in &prs {
                match self
                    .entries
                    .iter()
                    .find(|e| e.pr == pr && e.algorithm == algorithm && e.mode == mode)
                {
                    Some(e) => {
                        let _ = write!(out, " {:.1} |", e.mreq_per_sec);
                    }
                    None => {
                        let _ = write!(out, " — |");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Read-modify-write of the ledger at `path` under an advisory file lock:
/// acquires `<path>.lock` (create-and-rename exclusivity, up to `wait`),
/// re-reads the file *inside* the critical section, upserts `entries`, and
/// writes the result atomically. Two concurrent CI runs updating the same
/// `BENCH_LEDGER.json` therefore serialize instead of interleaving — the
/// loser of the lock race sees the winner's rows and adds its own, and no
/// torn or lost update is possible. Returns the merged ledger.
pub fn locked_update(
    path: &std::path::Path,
    entries: Vec<LedgerEntry>,
    wait: std::time::Duration,
) -> Result<Ledger, String> {
    let _lock = dcn_util::fsx::FileLock::acquire(path, wait)?;
    // Failure injection for the race test: a delay here widens the
    // critical section; without the lock the interleaving would lose rows.
    dcn_util::failpoint::hit("ledger.critical");
    let mut ledger = match std::fs::read_to_string(path) {
        Ok(text) => Ledger::from_json(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ledger::default(),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    for entry in entries {
        ledger.upsert(entry);
    }
    dcn_util::fsx::write_atomic(path, ledger.to_json().as_bytes())
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(ledger)
}

/// Measures the current tree at the standard point and returns this PR's
/// rows: R-BMA through the sorted/batched, unsorted/batched and
/// per-request paths, BMA through the default batched path. Strictly
/// sequential (these are wall-clock numbers).
pub fn measure_standard_point(pr: u64) -> Vec<LedgerEntry> {
    let racks = 100;
    let b = 12;
    let alpha = 10u64;
    let len = 300_000;
    let net = builders::fat_tree_with_racks(racks);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    let spec = TraceSpec::Zipf {
        num_racks: racks,
        len,
        exponent: 1.2,
        seed: 5,
    };
    let measure = |algorithm: &AlgorithmKind, batch_size: usize, mode: ServeMode| {
        // Best of three fresh runs: a single wall-clock pass is at the
        // mercy of scheduler preemption and frequency ramps; the fastest
        // run is the least-disturbed estimate of the tree's throughput.
        (0..3)
            .map(|_| {
                let mut source = spec.source();
                let config = dcn_core::SimConfig {
                    seed: 7,
                    trace_name: spec.name(),
                    ..Default::default()
                }
                .with_batch_size(batch_size)
                .with_serve_mode(mode);
                let mut scheduler = algorithm.build_online(Arc::clone(&dm), b, alpha, 7);
                let report =
                    dcn_core::run(scheduler.as_mut(), &dm, alpha, source.as_mut(), &config);
                report.total.requests as f64 / report.total.elapsed_secs.max(1e-9) / 1e6
            })
            .fold(0.0f64, f64::max)
    };
    let batched = dcn_core::simulator::DEFAULT_BATCH_SIZE;
    let rbma = AlgorithmKind::Rbma { lazy: true };
    vec![
        LedgerEntry {
            pr,
            algorithm: "R-BMA".into(),
            mode: "batched".into(),
            mreq_per_sec: measure(&rbma, batched, ServeMode::Sorted),
        },
        LedgerEntry {
            pr,
            algorithm: "R-BMA".into(),
            mode: "unsorted-batched".into(),
            mreq_per_sec: measure(&rbma, batched, ServeMode::Unsorted),
        },
        LedgerEntry {
            pr,
            algorithm: "R-BMA".into(),
            mode: "unbatched".into(),
            mreq_per_sec: measure(&rbma, 1, ServeMode::Unsorted),
        },
        LedgerEntry {
            pr,
            algorithm: "BMA".into(),
            mode: "batched".into(),
            mreq_per_sec: measure(&AlgorithmKind::Bma, batched, ServeMode::Sorted),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pr: u64, algorithm: &str, mode: &str, tp: f64) -> LedgerEntry {
        LedgerEntry {
            pr,
            algorithm: algorithm.into(),
            mode: mode.into(),
            mreq_per_sec: tp,
        }
    }

    #[test]
    fn ledger_round_trips_through_json() {
        let mut ledger = Ledger::default();
        ledger.upsert(entry(4, "R-BMA", "batched", 22.8));
        ledger.upsert(entry(4, "R-BMA", "unbatched", 12.7));
        ledger.upsert(entry(5, "BMA", "batched", 31.0));
        let back = Ledger::from_json(&ledger.to_json()).unwrap();
        assert_eq!(back.entries, ledger.entries);
    }

    #[test]
    fn upsert_replaces_the_same_coordinate() {
        let mut ledger = Ledger::default();
        ledger.upsert(entry(7, "R-BMA", "batched", 20.0));
        ledger.upsert(entry(7, "R-BMA", "batched", 25.0));
        assert_eq!(ledger.entries.len(), 1);
        assert_eq!(ledger.entries[0].mreq_per_sec, 25.0);
        ledger.upsert(entry(7, "R-BMA", "unbatched", 12.0));
        assert_eq!(ledger.entries.len(), 2);
    }

    #[test]
    fn entries_stay_sorted_by_pr_then_coordinate() {
        let mut ledger = Ledger::default();
        ledger.upsert(entry(7, "R-BMA", "batched", 20.0));
        ledger.upsert(entry(4, "R-BMA", "batched", 22.8));
        ledger.upsert(entry(5, "BMA", "batched", 31.0));
        let prs: Vec<u64> = ledger.entries.iter().map(|e| e.pr).collect();
        assert_eq!(prs, vec![4, 5, 7]);
    }

    #[test]
    fn markdown_pivots_prs_into_columns() {
        let mut ledger = Ledger::default();
        ledger.upsert(entry(4, "R-BMA", "batched", 22.8));
        ledger.upsert(entry(7, "R-BMA", "batched", 30.0));
        ledger.upsert(entry(7, "BMA", "batched", 31.0));
        let md = ledger.to_markdown();
        assert!(md.contains("| algorithm | mode | PR 4 | PR 7 |"), "{md}");
        assert!(md.contains("| R-BMA | batched | 22.8 | 30.0 |"), "{md}");
        // BMA has no PR 4 point: rendered as a gap, not a fabricated 0.
        assert!(md.contains("| BMA | batched | — | 31.0 |"), "{md}");
    }

    #[test]
    fn committed_ledger_parses_and_covers_the_seeded_history() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_LEDGER.json");
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let ledger = Ledger::from_json(&text).unwrap();
        // The seeded ROADMAP history: PR 4's R-BMA batched/unbatched pair
        // and PR 5's BMA point must stay present.
        for (pr, algorithm, mode) in [
            (4, "R-BMA", "batched"),
            (4, "R-BMA", "unbatched"),
            (5, "BMA", "batched"),
        ] {
            assert!(
                ledger
                    .entries
                    .iter()
                    .any(|e| e.pr == pr && e.algorithm == algorithm && e.mode == mode),
                "missing seeded ledger row ({pr}, {algorithm}, {mode})"
            );
        }
    }

    #[test]
    fn measure_standard_point_produces_positive_rows() {
        let rows = measure_standard_point(7);
        let coords: Vec<(&str, &str)> = rows
            .iter()
            .map(|e| (e.algorithm.as_str(), e.mode.as_str()))
            .collect();
        assert_eq!(
            coords,
            vec![
                ("R-BMA", "batched"),
                ("R-BMA", "unsorted-batched"),
                ("R-BMA", "unbatched"),
                ("BMA", "batched"),
            ]
        );
        for e in &rows {
            assert!(e.pr == 7 && e.mreq_per_sec > 0.0, "{e:?}");
        }
    }
}

//! Regenerates the paper's evaluation figures and the DESIGN.md ablations.
//!
//! ```text
//! repro_figures [--fast] [--scale F] [--out DIR] [--json DIR] <target>...
//!
//! targets:
//!   fig1 fig2 fig3 fig4      the paper's Figures 1-4 (panels a, b, c)
//!   figures                  all four figures
//!   ablation-alpha           Abl. A: reconfiguration-cost sweep
//!   ablation-augmentation    Abl. B: (b,a) resource augmentation
//!   ablation-skew            Abl. C: spatial-skew sweep
//!   ablation-removal         Abl. E: lazy vs strict removals
//!   lower-bound              Abl. D: deterministic vs randomized gap
//!   scaling                  streamed 10^5 -> 10^7 request sweep (O(1) memory)
//!   demand                   demand mis-estimation sweep (static forecast vs drift)
//!   ablations                all ablations
//!   all                      everything
//!
//! --fast      scale workloads down ~20x (quick smoke run)
//! --scale F   multiply request counts by F (e.g. 10 for a 10x longer run;
//!             composes with --fast). Workloads stream, so memory stays flat.
//! --out DIR   also write each panel as CSV into DIR
//! --json DIR  also write each table target as BENCH_<target>.json into DIR
//!             (machine-readable summaries, e.g. CI's BENCH_demand.json)
//! ```

use dcn_bench::{
    ablation_alpha, ablation_augmentation, ablation_removal, ablation_skew, demand_sweep,
    lower_bound_gap, run_panel, scaling_sweep, series_to_csv, series_to_markdown, FigureSpec,
    Panel, SimpleTable,
};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    // A flag whose value is missing is a hard error, not a silent no-op:
    // `--scale` without a number must not quietly run at 1x.
    let value_of = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Some(v.clone()),
            _ => {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            }
        }
    };
    let out_dir: Option<PathBuf> = value_of("--out").map(PathBuf::from);
    let json_dir: Option<PathBuf> = value_of("--json").map(PathBuf::from);
    let scale_factor: f64 = match value_of("--scale") {
        Some(v) => match v.parse::<f64>() {
            // `!(x > 0.0)` also rejects NaN, which `x <= 0.0` would let
            // through (and which would otherwise degrade every length to 1).
            Ok(f) if f.is_finite() && f > 0.0 => f,
            _ => {
                eprintln!("--scale expects a positive finite number, got {v:?}");
                std::process::exit(2);
            }
        },
        None => 1.0,
    };
    let mut targets: Vec<String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--out" || a == "--scale" || a == "--json" {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            targets.push(a.clone());
        }
    }
    if targets.is_empty() {
        targets.push("all".into());
    }
    for dir in [&out_dir, &json_dir].into_iter().flatten() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    let divisor = if fast { 20 } else { 1 };
    // Every target honours --scale; ablations take one combined multiplier.
    let ablation_scale = scale_factor / divisor as f64;
    let expand = |t: &str| -> Vec<String> {
        match t {
            "all" => vec![
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "ablation-alpha",
                "ablation-augmentation",
                "ablation-skew",
                "ablation-removal",
                "lower-bound",
                "scaling",
                "demand",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
            "figures" => vec!["fig1", "fig2", "fig3", "fig4"]
                .into_iter()
                .map(String::from)
                .collect(),
            "ablations" => vec![
                "ablation-alpha",
                "ablation-augmentation",
                "ablation-skew",
                "ablation-removal",
                "lower-bound",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
            other => vec![other.to_string()],
        }
    };

    let mut queue: Vec<String> = targets.iter().flat_map(|t| expand(t)).collect();
    queue.dedup();

    for target in queue {
        match target.as_str() {
            id @ ("fig1" | "fig2" | "fig3" | "fig4") => {
                let spec = FigureSpec::by_id(id).expect("known figure id");
                let spec = if fast { spec.scaled(divisor) } else { spec };
                let spec = spec.scaled_by(scale_factor);
                run_figure(&spec, out_dir.as_deref());
            }
            id @ ("ablation-alpha"
            | "ablation-augmentation"
            | "ablation-skew"
            | "ablation-removal"
            | "lower-bound"
            | "demand") => {
                let table = match id {
                    "ablation-alpha" => ablation_alpha(ablation_scale),
                    "ablation-augmentation" => ablation_augmentation(ablation_scale),
                    "ablation-skew" => ablation_skew(ablation_scale),
                    "ablation-removal" => ablation_removal(ablation_scale),
                    "lower-bound" => lower_bound_gap(ablation_scale),
                    _ => demand_sweep(ablation_scale),
                };
                print_table(id, table, out_dir.as_deref(), json_dir.as_deref());
            }
            "scaling" => {
                let base: &[usize] = if fast {
                    &[10_000, 100_000, 1_000_000]
                } else {
                    &[100_000, 1_000_000, 10_000_000]
                };
                let lens: Vec<usize> = base
                    .iter()
                    .map(|&l| ((l as f64 * scale_factor).round() as usize).max(1))
                    .collect();
                print_table(
                    "scaling",
                    scaling_sweep(&lens),
                    out_dir.as_deref(),
                    json_dir.as_deref(),
                );
            }
            other => {
                eprintln!("unknown target: {other}");
                std::process::exit(2);
            }
        }
    }
}

fn run_figure(spec: &FigureSpec, out_dir: Option<&std::path::Path>) {
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    println!(
        "\n## {} — {} ({} requests, α={})\n",
        spec.id, spec.title, spec.total_requests, spec.alpha
    );
    for (panel, suffix, label) in [
        (Panel::RoutingCost, "a", "Routing cost"),
        (Panel::ExecutionTime, "b", "Execution time [s]"),
        (Panel::BestOf, "c", "Best-of comparison (routing cost)"),
    ] {
        // Panel b is timing-sensitive: single-threaded.
        let t = if panel == Panel::ExecutionTime {
            1
        } else {
            threads
        };
        let series = run_panel(spec, panel, t);
        println!(
            "{}",
            series_to_markdown(&format!("{}{suffix}: {label}", spec.id), &series)
        );
        if let Some(dir) = out_dir {
            let path = dir.join(format!("{}{suffix}.csv", spec.id));
            std::fs::write(&path, series_to_csv(&series)).expect("write CSV");
            println!("(wrote {})\n", path.display());
        }
    }
}

fn print_table(
    target: &str,
    table: SimpleTable,
    out_dir: Option<&std::path::Path>,
    json_dir: Option<&std::path::Path>,
) {
    println!("\n{}", table.to_markdown());
    if let Some(dir) = json_dir {
        let path = dir.join(format!("BENCH_{target}.json"));
        std::fs::write(&path, table.to_json()).expect("write JSON summary");
        println!("(wrote {})\n", path.display());
    }
    if let Some(dir) = out_dir {
        let slug: String = table
            .title
            .chars()
            .take_while(|&c| c != ':')
            .filter(|c| c.is_alphanumeric())
            .collect::<String>()
            .to_lowercase();
        let mut csv = String::from("row");
        for c in &table.columns {
            csv.push(',');
            csv.push_str(&c.replace(',', ";"));
        }
        csv.push('\n');
        for (label, values) in &table.rows {
            csv.push_str(label);
            for v in values {
                csv.push_str(&format!(",{v}"));
            }
            csv.push('\n');
        }
        let path = dir.join(format!("{slug}.csv"));
        std::fs::write(&path, csv).expect("write CSV");
        println!("(wrote {})\n", path.display());
    }
}

//! Regenerates the paper's evaluation figures and the DESIGN.md ablations.
//!
//! ```text
//! repro_figures [--fast] [--scale F] [--threads N] [--shard I/M]
//!               [--intra-threads N] [--pr N] [--ledger-file PATH]
//!               [--out DIR] [--json DIR] [--merge-json DIR]
//!               [--telemetry DIR] [--journal FILE] [--resume] <target>...
//! repro_figures --telemetry-diff A.json B.json
//!
//! targets:
//!   fig1 fig2 fig3 fig4      the paper's Figures 1-4 (panels a, b, c)
//!   figures                  all four figures
//!   ablation-alpha           Abl. A: reconfiguration-cost sweep
//!   ablation-augmentation    Abl. B: (b,a) resource augmentation
//!   ablation-skew            Abl. C: spatial-skew sweep
//!   ablation-removal         Abl. E: lazy vs strict removals
//!   lower-bound              Abl. D: deterministic vs randomized gap
//!   scaling                  streamed 10^5 -> 10^7 request sweep (O(1) memory)
//!   demand                   demand mis-estimation sweep (static forecast vs drift)
//!   sweep                    work-stealing executor scaling on a skewed job mix
//!   ledger                   measure the standard point and upsert this PR's
//!                            rows into the committed BENCH_LEDGER.json
//!                            (requires --pr; not part of "all")
//!   adversary                coverage-guided adversarial trace search per
//!                            algorithm (worst cost ratio vs SO-BMA); with
//!                            --json also writes the replayable genomes as
//!                            BENCH_adversary_genomes.json
//!   ablations                all ablations
//!   all                      everything
//!
//! --fast        scale workloads down ~20x (quick smoke run)
//! --scale F     multiply request counts by F (e.g. 10 for a 10x longer run;
//!               composes with --fast). Workloads stream, so memory stays flat.
//! --threads N   work-stealing worker count for job grids (0 = auto, one per
//!               core — the default). Timing-sensitive serve loops (panel b,
//!               scaling/sweep rows) stay sequential regardless.
//! --intra-threads N  intra-run worker count: each simulation that serves
//!               an intra-sharded column (R-BMA's Phase-A charging, BMA's
//!               bucketed scan in the scaling target, plus the live
//!               report-equality assertion) shards its own scan this wide
//!               (0 = auto, one per core; default 2). Per-simulation width
//!               — composes with --threads, which fans out across
//!               simulations, so S workers at width W can occupy S × W
//!               cores. Reports are byte-identical at any value.
//! --pr N        PR number to record ledger measurements under (ledger only)
//! --ledger-file PATH  ledger location (default BENCH_LEDGER.json)
//! --shard I/M   compute only this shard's slice of a table target's rows
//!               (round-robin by row index; seeds unchanged). With --json,
//!               writes BENCH_<target>.shard-I-of-M.json for --merge-json.
//!               Table targets only — figure targets have no mergeable
//!               artifact.
//! --out DIR     also write each panel as CSV into DIR
//! --json DIR    also write each table target as BENCH_<target>.json into DIR
//!               (machine-readable summaries, e.g. CI's BENCH_demand.json)
//! --merge-json DIR  run nothing; instead union DIR's shard files for each
//!               named table target into BENCH_<target>.json (byte-identical
//!               to an unsharded run for deterministic tables). When DIR also
//!               holds TELEM_<target>.shard-*.json files, they are absorbed
//!               (counters sum, gauges max, histogram buckets sum) into
//!               TELEM_<target>.json alongside.
//! --telemetry DIR  install a process-wide telemetry sink and, after each
//!               target, drain it into DIR as TELEM_<target>.json (plus a
//!               Prometheus-text TELEM_<target>.prom on unsharded runs) and
//!               print a per-metric summary table. Reports and BENCH json
//!               stay byte-identical with or without this flag.
//! --telemetry-diff A B  run nothing; compare the deterministic projection
//!               (scheduling-independent counters + histogram observation
//!               counts) of two TELEM json files, exit 1 on divergence.
//! --journal FILE  append one JSON line per completed supervised job (the
//!               demand target) to FILE via atomic write-then-rename. A run
//!               killed mid-sweep leaves a valid journal behind.
//! --resume      replay FILE before running: journaled jobs are served from
//!               their recorded reports (digest-checked), only missing or
//!               quarantined jobs re-run. The merged artifact is
//!               byte-identical to an uninterrupted run. Requires --journal.
//!
//! The environment variable `DCN_FAILPOINTS` (e.g.
//! `sweep.job_claim=panic@5`, `sim.chunk=delay:2ms@10%`) arms deterministic
//! fault-injection points for chaos testing; see `dcn_util::failpoint`.
//! Schedules replay exactly for a fixed `DCN_FAILPOINTS_SEED`.
//! ```

use dcn_bench::{
    ablation_alpha, ablation_augmentation, ablation_removal, ablation_skew, adversary_search,
    demand_sweep_supervised, genomes_to_json, locked_update, lower_bound_gap,
    measure_standard_point, run_panel, scaling_sweep, series_to_csv, series_to_markdown, shard,
    sweep_scaling, telem, worst_case_panel, FigureSpec, Panel, SimpleTable,
};
use dcn_core::sweep::{JobFailure, ShardSpec, Supervisor};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

const TABLE_TARGETS: [&str; 9] = [
    "ablation-alpha",
    "ablation-augmentation",
    "ablation-skew",
    "ablation-removal",
    "lower-bound",
    "demand",
    "scaling",
    "sweep",
    "adversary",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    // A flag whose value is missing is a hard error, not a silent no-op:
    // `--scale` without a number must not quietly run at 1x.
    let value_of = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Some(v.clone()),
            _ => {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            }
        }
    };
    // Diff mode takes two file operands and runs nothing else.
    if let Some(i) = args.iter().position(|a| a == "--telemetry-diff") {
        let (Some(a), Some(b)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!("--telemetry-diff requires two TELEM json files");
            std::process::exit(2);
        };
        diff_telemetry(a, b);
        return;
    }
    let out_dir: Option<PathBuf> = value_of("--out").map(PathBuf::from);
    let json_dir: Option<PathBuf> = value_of("--json").map(PathBuf::from);
    let merge_dir: Option<PathBuf> = value_of("--merge-json").map(PathBuf::from);
    let telemetry_dir: Option<PathBuf> = value_of("--telemetry").map(PathBuf::from);
    let scale_factor: f64 = match value_of("--scale") {
        Some(v) => match v.parse::<f64>() {
            // `!(x > 0.0)` also rejects NaN, which `x <= 0.0` would let
            // through (and which would otherwise degrade every length to 1).
            Ok(f) if f.is_finite() && f > 0.0 => f,
            _ => {
                eprintln!("--scale expects a positive finite number, got {v:?}");
                std::process::exit(2);
            }
        },
        None => 1.0,
    };
    // 0 = auto (the default): one work-stealing worker per available core.
    let threads: usize = match value_of("--threads") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--threads expects a non-negative integer (0 = auto), got {v:?}");
                std::process::exit(2);
            }
        },
        None => 0,
    };
    // Intra-run workers for the scaling target (0 = auto; default 2 so the
    // sharded column and its equality assertion are live even unasked).
    let intra_threads: usize = match value_of("--intra-threads") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--intra-threads expects a non-negative integer (0 = auto), got {v:?}");
                std::process::exit(2);
            }
        },
        None => 2,
    };
    let pr: Option<u64> = value_of("--pr").map(|v| match v.parse::<u64>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("--pr expects a non-negative integer, got {v:?}");
            std::process::exit(2);
        }
    });
    let ledger_file: PathBuf = value_of("--ledger-file")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_LEDGER.json"));
    let shard_spec: ShardSpec = match value_of("--shard") {
        Some(v) => match ShardSpec::parse(&v) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("--shard: {e}");
                std::process::exit(2);
            }
        },
        None => ShardSpec::full(),
    };
    // Chaos harness: DCN_FAILPOINTS arms deterministic fault injection
    // before any work runs; a malformed spec is a startup error, not a
    // silently unarmed run.
    match dcn_util::failpoint::arm_from_env() {
        Ok(0) => {}
        Ok(n) => eprintln!("failpoints: {n} armed from DCN_FAILPOINTS"),
        Err(e) => {
            eprintln!("DCN_FAILPOINTS: {e}");
            std::process::exit(2);
        }
    }
    let journal_file: Option<PathBuf> = value_of("--journal").map(PathBuf::from);
    let resume = args.iter().any(|a| a == "--resume");
    if resume && journal_file.is_none() {
        eprintln!("--resume requires --journal FILE (the journal to replay)");
        std::process::exit(2);
    }
    if let Some(path) = &journal_file {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).expect("create journal directory");
        }
        match dcn_core::journal::RunJournal::open(path, resume) {
            Ok(j) => {
                if resume {
                    println!(
                        "journal: {} completed job(s) will replay from {}",
                        j.len(),
                        path.display()
                    );
                }
                dcn_core::journal::install(j);
            }
            Err(e) => {
                eprintln!("--journal {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    let mut targets: Vec<String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if [
            "--out",
            "--scale",
            "--json",
            "--threads",
            "--shard",
            "--merge-json",
            "--intra-threads",
            "--pr",
            "--ledger-file",
            "--telemetry",
            "--journal",
        ]
        .contains(&a.as_str())
        {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            targets.push(a.clone());
        }
    }
    if targets.is_empty() {
        targets.push("all".into());
    }
    for dir in [&out_dir, &json_dir, &telemetry_dir].into_iter().flatten() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    if telemetry_dir.is_some() {
        // Every SimConfig::default() in the figure/table code paths picks
        // this handle up; reports stay byte-identical either way.
        dcn_telemetry::install_global(dcn_telemetry::Telemetry::enabled());
        if !dcn_telemetry::compiled() {
            eprintln!("note: built with --cfg dcn_telemetry_off; TELEM artifacts will be empty");
        }
    }

    let divisor = if fast { 20 } else { 1 };
    // Every target honours --scale; ablations take one combined multiplier.
    let ablation_scale = scale_factor / divisor as f64;
    let expand = |t: &str| -> Vec<String> {
        match t {
            "all" => vec![
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "ablation-alpha",
                "ablation-augmentation",
                "ablation-skew",
                "ablation-removal",
                "lower-bound",
                "scaling",
                "demand",
                "sweep",
                "adversary",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
            "figures" => vec!["fig1", "fig2", "fig3", "fig4"]
                .into_iter()
                .map(String::from)
                .collect(),
            "ablations" => vec![
                "ablation-alpha",
                "ablation-augmentation",
                "ablation-skew",
                "ablation-removal",
                "lower-bound",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
            other => vec![other.to_string()],
        }
    };

    let mut queue: Vec<String> = targets.iter().flat_map(|t| expand(t)).collect();
    queue.dedup();

    // Merge mode: reassemble shard artifacts, run nothing. Aggregate
    // targets (`all`, `ablations`) narrow to their table members — only an
    // *explicitly named* figure target is an error, since figures have no
    // mergeable BENCH json.
    if let Some(dir) = merge_dir {
        let mut merge_queue: Vec<String> = Vec::new();
        for t in &targets {
            let expanded = expand(t);
            let is_aggregate = expanded.len() > 1;
            for target in expanded {
                if TABLE_TARGETS.contains(&target.as_str()) {
                    merge_queue.push(target);
                } else if !is_aggregate {
                    eprintln!(
                        "--merge-json: {target} is not a table target (no BENCH json to merge)"
                    );
                    std::process::exit(2);
                }
            }
        }
        merge_queue.dedup();
        if merge_queue.is_empty() {
            eprintln!("--merge-json: no table targets among {targets:?}");
            std::process::exit(2);
        }
        for target in &merge_queue {
            match shard::merge_target_dir(&dir, target) {
                Ok((table, parts)) => {
                    let path = dir.join(shard::merged_file_name(target));
                    std::fs::write(&path, table.to_json()).expect("write merged JSON");
                    println!("merged {} shard file(s) -> {}", parts.len(), path.display());
                    println!("\n{}", table.to_markdown());
                }
                Err(e) => {
                    eprintln!("--merge-json {target}: {e}");
                    std::process::exit(2);
                }
            }
            // Telemetry shards ride along when present; a BENCH-only run
            // has none and that is not an error.
            if has_telem_shards(&dir, target) {
                match telem::merge_target_dir(&dir, target) {
                    Ok((snapshot, parts)) => {
                        let path = dir.join(telem::telem_file_name(target));
                        std::fs::write(&path, snapshot.to_json(target))
                            .expect("write merged TELEM json");
                        println!(
                            "merged {} telemetry shard file(s) -> {}",
                            parts.len(),
                            path.display()
                        );
                    }
                    Err(e) => {
                        eprintln!("--merge-json {target}: {e}");
                        std::process::exit(2);
                    }
                }
            }
        }
        return;
    }

    for target in queue {
        let target_t0 = Instant::now();
        let served_before = dcn_core::total_served();
        match target.as_str() {
            id @ ("fig1" | "fig2" | "fig3" | "fig4") => {
                if !shard_spec.is_full() {
                    eprintln!(
                        "--shard applies to table targets {TABLE_TARGETS:?}; {id} produces \
                         per-panel CSV/markdown with no mergeable BENCH json"
                    );
                    std::process::exit(2);
                }
                let spec = FigureSpec::by_id(id).expect("known figure id");
                let spec = if fast { spec.scaled(divisor) } else { spec };
                let spec = spec.scaled_by(scale_factor);
                run_figure(&spec, threads, out_dir.as_deref());
                // Standing worst-case panel: fig1 carries the committed
                // adversarial corpus rows, so figure runs exercise the
                // discovered nemesis traces, not only `scaling`.
                if id == "fig1" {
                    print_table(
                        "fig1-worst-case",
                        worst_case_panel(),
                        shard_spec,
                        out_dir.as_deref(),
                        json_dir.as_deref(),
                    );
                }
            }
            id @ ("ablation-alpha"
            | "ablation-augmentation"
            | "ablation-skew"
            | "ablation-removal"
            | "lower-bound"
            | "demand"
            | "sweep") => {
                let (table, failures) = match id {
                    "ablation-alpha" => {
                        (ablation_alpha(ablation_scale, threads, shard_spec), vec![])
                    }
                    "ablation-augmentation" => (
                        ablation_augmentation(ablation_scale, threads, shard_spec),
                        vec![],
                    ),
                    "ablation-skew" => (ablation_skew(ablation_scale, threads, shard_spec), vec![]),
                    "ablation-removal" => (
                        ablation_removal(ablation_scale, threads, shard_spec),
                        vec![],
                    ),
                    "lower-bound" => (lower_bound_gap(ablation_scale, threads, shard_spec), vec![]),
                    "sweep" => (sweep_scaling(ablation_scale, shard_spec), vec![]),
                    // The demand target runs supervised: per-job retries,
                    // quarantine instead of abort, and (with --journal)
                    // resumability.
                    _ => demand_sweep_supervised(
                        ablation_scale,
                        threads,
                        shard_spec,
                        &Supervisor::scoped("demand"),
                    ),
                };
                if id == "demand" {
                    report_quarantines(&failures, json_dir.as_deref());
                }
                print_table(
                    id,
                    table,
                    shard_spec,
                    out_dir.as_deref(),
                    json_dir.as_deref(),
                );
                // The demand target carries the standing worst-case panel
                // too (unsharded runs only: the panel is not part of the
                // mergeable per-shard BENCH json).
                if id == "demand" && shard_spec.is_full() {
                    print_table(
                        "demand-worst-case",
                        worst_case_panel(),
                        shard_spec,
                        out_dir.as_deref(),
                        json_dir.as_deref(),
                    );
                }
            }
            "adversary" => {
                let (table, genomes) = adversary_search(ablation_scale, threads, shard_spec);
                if let Some(dir) = json_dir.as_deref() {
                    // The replayable genome artifact rides alongside the
                    // mergeable table JSON (genome files are per-shard
                    // slices too, but have no --merge-json support; the
                    // corpus replay test is their consumer).
                    let name = if shard_spec.is_full() {
                        shard::merged_file_name("adversary_genomes")
                    } else {
                        shard::shard_file_name("adversary_genomes", shard_spec)
                    };
                    let path = dir.join(name);
                    std::fs::write(&path, genomes_to_json(&genomes))
                        .expect("write genome artifact");
                    println!("(wrote {})\n", path.display());
                }
                print_table(
                    "adversary",
                    table,
                    shard_spec,
                    out_dir.as_deref(),
                    json_dir.as_deref(),
                );
            }
            "scaling" => {
                let base: &[usize] = if fast {
                    &[10_000, 100_000, 1_000_000]
                } else {
                    &[100_000, 1_000_000, 10_000_000]
                };
                let lens: Vec<usize> = base
                    .iter()
                    .map(|&l| ((l as f64 * scale_factor).round() as usize).max(1))
                    .collect();
                let (table, specials_share) =
                    scaling_sweep(&lens, threads, shard_spec, intra_threads);
                print_table(
                    "scaling",
                    table,
                    shard_spec,
                    out_dir.as_deref(),
                    json_dir.as_deref(),
                );
                // Footer: the measured Theorem-1 specials share across the
                // R-BMA runs (the slow-path density the serve numbers above
                // are facing), from the `rbma.specials` telemetry counter.
                match specials_share {
                    Some(share) => println!(
                        "[scaling] measured specials share: {:.1}% of R-BMA requests (rbma.specials)",
                        share * 100.0
                    ),
                    None => println!(
                        "[scaling] measured specials share: n/a (telemetry compiled out)"
                    ),
                }
            }
            "ledger" => {
                let Some(pr) = pr else {
                    eprintln!("ledger requires --pr N (the PR to record the measurement under)");
                    std::process::exit(2);
                };
                // Measure outside the lock (minutes of wall clock), then
                // read-modify-write the file under the advisory lock so
                // concurrent CI runs serialize instead of losing rows.
                let entries = measure_standard_point(pr);
                for entry in &entries {
                    println!(
                        "PR {pr}: {} {} = {:.1} Mreq/s",
                        entry.algorithm, entry.mode, entry.mreq_per_sec
                    );
                }
                let ledger = match locked_update(
                    &ledger_file,
                    entries,
                    std::time::Duration::from_secs(30),
                ) {
                    Ok(l) => l,
                    Err(e) => {
                        eprintln!("{}: {e}", ledger_file.display());
                        std::process::exit(2);
                    }
                };
                println!("(wrote {})\n", ledger_file.display());
                println!("{}", ledger.to_markdown());
            }
            other => {
                eprintln!("unknown target: {other}");
                std::process::exit(2);
            }
        }
        // Per-target footer: wall clock, requests actually pushed through
        // the serve loop (simulator-side counter, live even with telemetry
        // disabled) and the effective aggregate rate.
        let wall = target_t0.elapsed().as_secs_f64();
        let served = dcn_core::total_served() - served_before;
        let mreq_s = if wall > 0.0 {
            served as f64 / wall / 1e6
        } else {
            0.0
        };
        println!(
            "[{target}] {wall:.2}s wall, {served} requests simulated, {mreq_s:.2} Mreq/s effective"
        );
        if let Some(dir) = telemetry_dir.as_deref() {
            export_telemetry(dir, &target, shard_spec);
        }
    }
}

/// The machine-readable quarantine report that rides alongside
/// `BENCH_demand.json`: CI uploads it as an artifact, so a degraded sweep
/// is diagnosable from the failure rows without rerunning anything.
struct QuarantineReport<'a> {
    target: &'a str,
    failures: &'a [JobFailure],
}

// Manual impl: the vendored serde_derive does not handle lifetime-generic
// types.
impl Serialize for QuarantineReport<'_> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut s = serializer.serialize_struct("QuarantineReport", 2)?;
        s.serialize_field("target", &self.target)?;
        s.serialize_field("failures", &self.failures)?;
        s.end()
    }
}

/// Prints quarantined jobs to stderr and (with `--json`) writes the
/// structured `QUARANTINE_demand.json` report — always, so a failure-free
/// run leaves an explicit empty report rather than an absent file.
fn report_quarantines(failures: &[JobFailure], json_dir: Option<&std::path::Path>) {
    for f in failures {
        eprintln!(
            "quarantined job {} ({}): {} after {} attempt(s): {}",
            f.index, f.key, f.reason, f.attempts, f.detail
        );
    }
    if let Some(dir) = json_dir {
        let report = QuarantineReport {
            target: "demand",
            failures,
        };
        let path = dir.join("QUARANTINE_demand.json");
        let json = dcn_util::json::to_json_string(&report).expect("quarantine serialization");
        std::fs::write(&path, json).expect("write quarantine report");
        println!("(wrote {})\n", path.display());
    }
}

/// Drains the global telemetry sink into `dir` as this target's TELEM
/// artifact(s) and prints the per-metric summary. Draining per target
/// keeps multi-target invocations separated.
fn export_telemetry(dir: &std::path::Path, target: &str, shard_spec: ShardSpec) {
    let snapshot = dcn_telemetry::global().drain();
    let name = if shard_spec.is_full() {
        telem::telem_file_name(target)
    } else {
        telem::telem_shard_file_name(target, shard_spec)
    };
    let path = dir.join(name);
    std::fs::write(&path, snapshot.to_json(target)).expect("write TELEM json");
    println!("(wrote {})\n", path.display());
    if shard_spec.is_full() {
        let prom = dir.join(telem::telem_prom_file_name(target));
        std::fs::write(&prom, snapshot.to_prometheus()).expect("write TELEM prom");
        println!("(wrote {})\n", prom.display());
    }
    print!("{}", telem::summary_table(&snapshot));
}

/// `--telemetry-diff A B`: compares the deterministic projections of two
/// TELEM files (any mix of shard and merged artifacts of the same run
/// shape) and exits non-zero on divergence.
fn diff_telemetry(a: &str, b: &str) {
    let load = |p: &str| {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("--telemetry-diff: {p}: {e}");
            std::process::exit(2);
        });
        telem::parse_snapshot(&text).unwrap_or_else(|e| {
            eprintln!("--telemetry-diff: {p}: {e}");
            std::process::exit(2);
        })
    };
    let ((ta, sa), (tb, sb)) = (load(a), load(b));
    if ta != tb {
        eprintln!("--telemetry-diff: targets differ: {ta:?} vs {tb:?}");
        std::process::exit(1);
    }
    match telem::diff_projection(&sa, &sb) {
        Ok(()) => {
            let keys = telem::projection(&sa).len();
            println!("telemetry projections match ({keys} deterministic keys)");
        }
        Err(divergences) => {
            eprintln!("telemetry projections diverge:\n{divergences}");
            std::process::exit(1);
        }
    }
}

/// Whether `dir` holds any `TELEM_<target>.shard-*.json` files.
fn has_telem_shards(dir: &std::path::Path, target: &str) -> bool {
    let prefix = format!("TELEM_{target}.shard-");
    std::fs::read_dir(dir).is_ok_and(|entries| {
        entries.flatten().any(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".json"))
        })
    })
}

fn run_figure(spec: &FigureSpec, threads: usize, out_dir: Option<&std::path::Path>) {
    let threads = dcn_core::sweep::resolve_threads(threads);
    println!(
        "\n## {} — {} ({} requests, α={})\n",
        spec.id, spec.title, spec.total_requests, spec.alpha
    );
    for (panel, suffix, label) in [
        (Panel::RoutingCost, "a", "Routing cost"),
        (Panel::ExecutionTime, "b", "Execution time [s]"),
        (Panel::BestOf, "c", "Best-of comparison (routing cost)"),
    ] {
        // Panel b is timing-sensitive: single-threaded.
        let t = if panel == Panel::ExecutionTime {
            1
        } else {
            threads
        };
        let series = run_panel(spec, panel, t);
        println!(
            "{}",
            series_to_markdown(&format!("{}{suffix}: {label}", spec.id), &series)
        );
        if let Some(dir) = out_dir {
            let path = dir.join(format!("{}{suffix}.csv", spec.id));
            std::fs::write(&path, series_to_csv(&series)).expect("write CSV");
            println!("(wrote {})\n", path.display());
        }
    }
}

fn print_table(
    target: &str,
    table: SimpleTable,
    shard_spec: ShardSpec,
    out_dir: Option<&std::path::Path>,
    json_dir: Option<&std::path::Path>,
) {
    println!("\n{}", table.to_markdown());
    if let Some(dir) = json_dir {
        // A sharded run writes its slice under the shard name, ready for
        // --merge-json; an unsharded run writes the final artifact.
        let name = if shard_spec.is_full() {
            shard::merged_file_name(target)
        } else {
            shard::shard_file_name(target, shard_spec)
        };
        let path = dir.join(name);
        std::fs::write(&path, table.to_json()).expect("write JSON summary");
        println!("(wrote {})\n", path.display());
    }
    if let Some(dir) = out_dir {
        let slug: String = table
            .title
            .chars()
            .take_while(|&c| c != ':')
            .filter(|c| c.is_alphanumeric())
            .collect::<String>()
            .to_lowercase();
        let mut csv = String::from("row");
        for c in &table.columns {
            csv.push(',');
            csv.push_str(&c.replace(',', ";"));
        }
        csv.push('\n');
        for (label, values) in &table.rows {
            csv.push_str(label);
            for v in values {
                csv.push_str(&format!(",{v}"));
            }
            csv.push('\n');
        }
        let path = dir.join(format!("{slug}.csv"));
        std::fs::write(&path, csv).expect("write CSV");
        println!("(wrote {})\n", path.display());
    }
}

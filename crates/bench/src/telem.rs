//! `TELEM_*` artifacts: naming, parsing, shard merging and the diffable
//! projection.
//!
//! `repro_figures --telemetry DIR <target>` drains the global
//! [`dcn_telemetry::Telemetry`] handle once per target and writes the
//! snapshot as `TELEM_<target>.json` (plus a Prometheus-text twin,
//! `TELEM_<target>.prom`). Sharded runs write
//! `TELEM_<target>.shard-i-of-m.json`, and `--merge-json` folds the shard
//! snapshots back together with [`Snapshot::absorb`] — counters sum,
//! gauges max, histogram buckets sum — which is associative and
//! commutative, so the merge is order-independent.
//!
//! Unlike `BENCH_*` tables, telemetry snapshots are **not** byte-stable
//! across run shapes: wall-clock histograms and per-worker busy/idle
//! counters move with machine load and thread interleaving. The CI
//! shard-vs-unsharded check therefore compares the [`projection`] — the
//! event counters that determinism does guarantee (everything except
//! per-worker splits and `*_ns` time sums) plus each histogram's total
//! observation count.

use dcn_core::sweep::ShardSpec;
use dcn_telemetry::Snapshot;
use dcn_util::json::{parse_json, JsonValue};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File name of one shard's telemetry artifact for `target`.
pub fn telem_shard_file_name(target: &str, shard: ShardSpec) -> String {
    format!(
        "TELEM_{target}.shard-{}-of-{}.json",
        shard.index(),
        shard.count()
    )
}

/// File name of the merged (= unsharded) telemetry artifact for `target`.
pub fn telem_file_name(target: &str) -> String {
    format!("TELEM_{target}.json")
}

/// File name of the Prometheus-text twin for `target`.
pub fn telem_prom_file_name(target: &str) -> String {
    format!("TELEM_{target}.prom")
}

fn as_i64(v: &JsonValue) -> Option<i64> {
    match *v {
        JsonValue::Uint(u) => i64::try_from(u).ok(),
        JsonValue::Int(i) => Some(i),
        _ => None,
    }
}

/// Parses the JSON that [`Snapshot::to_json`] emits back into the
/// `(target, snapshot)` pair. Derived fields (`p50`/`p90`/`p99`) are
/// ignored — they are recomputed from the buckets on re-serialization,
/// which is what makes merging commute with export.
pub fn parse_snapshot(text: &str) -> Result<(String, Snapshot), String> {
    let root = parse_json(text)?;
    let target = root
        .get("target")
        .and_then(JsonValue::as_str)
        .ok_or("missing \"target\"")?
        .to_string();
    let mut snap = Snapshot::default();
    for (name, v) in root
        .get("counters")
        .and_then(JsonValue::as_object)
        .ok_or("missing \"counters\"")?
    {
        let v = v
            .as_u64()
            .ok_or_else(|| format!("counter {name:?}: not a u64"))?;
        snap.counters.insert(name.clone(), v);
    }
    for (name, v) in root
        .get("gauges")
        .and_then(JsonValue::as_object)
        .ok_or("missing \"gauges\"")?
    {
        let v = as_i64(v).ok_or_else(|| format!("gauge {name:?}: not an i64"))?;
        snap.gauges.insert(name.clone(), v);
    }
    for (name, h) in root
        .get("histograms")
        .and_then(JsonValue::as_object)
        .ok_or("missing \"histograms\"")?
    {
        let field = |key: &str| {
            h.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("histogram {name:?}: bad {key:?}"))
        };
        let mut hs = dcn_telemetry::HistogramSnapshot {
            count: field("count")?,
            sum: field("sum")?,
            buckets: Vec::new(),
        };
        for pair in h
            .get("buckets")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("histogram {name:?}: missing buckets"))?
        {
            let entry = pair.as_array().filter(|a| a.len() == 2);
            let (Some(b), Some(c)) = (
                entry.and_then(|a| a[0].as_u64()),
                entry.and_then(|a| a[1].as_u64()),
            ) else {
                return Err(format!("histogram {name:?}: malformed bucket entry"));
            };
            if b as usize >= dcn_telemetry::HIST_BUCKETS {
                return Err(format!("histogram {name:?}: bucket {b} out of range"));
            }
            hs.buckets.push((b as u8, c));
        }
        if hs.buckets.iter().map(|&(_, c)| c).sum::<u64>() != hs.count {
            return Err(format!(
                "histogram {name:?}: bucket counts don't sum to count"
            ));
        }
        snap.histograms.insert(name.clone(), hs);
    }
    Ok((target, snap))
}

/// Scans `dir` for `target`'s telemetry shard files, parses and absorbs
/// them into one snapshot, and returns it with the paths consumed.
/// Validates the same partition invariants as the `BENCH_*` merge: a
/// consistent shard count, no duplicates, no gaps.
pub fn merge_target_dir(dir: &Path, target: &str) -> Result<(Snapshot, Vec<PathBuf>), String> {
    let prefix = format!("TELEM_{target}.shard-");
    let mut parts: Vec<(ShardSpec, Snapshot)> = Vec::new();
    let mut paths = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(spec) = name
            .strip_prefix(&prefix)
            .and_then(|rest| rest.strip_suffix(".json"))
        else {
            continue;
        };
        let Some((i, m)) = spec.split_once("-of-") else {
            return Err(format!("malformed telemetry shard file name {name:?}"));
        };
        let shard = ShardSpec::parse(&format!("{i}/{m}"))
            .map_err(|e| format!("telemetry shard file {name:?}: {e}"))?;
        let text = std::fs::read_to_string(entry.path()).map_err(|e| format!("{name}: {e}"))?;
        let (file_target, snap) = parse_snapshot(&text).map_err(|e| format!("{name}: {e}"))?;
        if file_target != target {
            return Err(format!(
                "{name}: tagged for target {file_target:?}, expected {target:?}"
            ));
        }
        parts.push((shard, snap));
        paths.push(entry.path());
    }
    let count = parts
        .first()
        .map(|(s, _)| s.count())
        .ok_or_else(|| format!("no {prefix}*.json shard files in {}", dir.display()))?;
    let mut seen = vec![false; count];
    let mut merged = Snapshot::default();
    for (shard, snap) in &parts {
        if shard.count() != count {
            return Err(format!(
                "inconsistent telemetry shard counts: {} vs {count}",
                shard.count()
            ));
        }
        if std::mem::replace(&mut seen[shard.index()], true) {
            return Err(format!("duplicate telemetry shard {shard}"));
        }
        merged.absorb(snap);
    }
    if let Some(i) = seen.iter().position(|&s| !s) {
        return Err(format!("missing telemetry shard {i}-of-{count}"));
    }
    paths.sort();
    Ok((merged, paths))
}

/// The deterministic projection of a snapshot: counters whose value does
/// not depend on thread scheduling or wall clock — every counter whose
/// name neither contains `.worker.` nor ends in `_ns` — plus each
/// histogram's total observation count (bucket *positions* move with
/// timing; the number of observations does not).
pub fn projection(snapshot: &Snapshot) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for (k, &v) in &snapshot.counters {
        if !k.contains(".worker.") && !k.ends_with("_ns") {
            out.insert(k.clone(), v);
        }
    }
    for (k, h) in &snapshot.histograms {
        out.insert(format!("{k}:count"), h.count);
    }
    out
}

/// Compares the deterministic projections of two snapshots; `Err` lists
/// every divergence (missing keys and value mismatches).
pub fn diff_projection(a: &Snapshot, b: &Snapshot) -> Result<(), String> {
    let (pa, pb) = (projection(a), projection(b));
    let mut lines = Vec::new();
    for (k, va) in &pa {
        match pb.get(k) {
            None => lines.push(format!("{k}: {va} vs <missing>")),
            Some(vb) if vb != va => lines.push(format!("{k}: {va} vs {vb}")),
            Some(_) => {}
        }
    }
    for (k, vb) in &pb {
        if !pa.contains_key(k) {
            lines.push(format!("{k}: <missing> vs {vb}"));
        }
    }
    if lines.is_empty() {
        Ok(())
    } else {
        Err(lines.join("\n"))
    }
}

/// Renders the human summary printed under each target: one markdown
/// table of counters and gauges, one of histogram percentiles.
pub fn summary_table(snapshot: &Snapshot) -> String {
    let mut s = String::new();
    if !snapshot.counters.is_empty() || !snapshot.gauges.is_empty() {
        s.push_str("| metric | value |\n|---|---:|\n");
        for (k, v) in &snapshot.counters {
            s.push_str(&format!("| {k} | {v} |\n"));
        }
        for (k, v) in &snapshot.gauges {
            s.push_str(&format!("| {k} (gauge) | {v} |\n"));
        }
    }
    if !snapshot.histograms.is_empty() {
        s.push_str("\n| histogram | count | p50 | p90 | p99 |\n|---|---:|---:|---:|---:|\n");
        for (k, h) in &snapshot.histograms {
            s.push_str(&format!(
                "| {k} | {} | {} | {} | {} |\n",
                h.count,
                h.percentile(50),
                h.percentile(90),
                h.percentile(99)
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_telemetry::{Histogram, Telemetry};

    fn sample_snapshot(scale: u64) -> Snapshot {
        let t = Telemetry::enabled();
        t.add_counter("serve.requests", 100 * scale);
        t.add_counter("sweep.worker.0.steals", 3 * scale);
        t.add_counter("sweep.worker.0.busy_ns", 999 * scale);
        t.gauge_max("intra.imbalance_pct", 12 * scale as i64);
        let mut h = Histogram::default();
        for v in 0..40 * scale {
            h.record(v * v);
        }
        t.merge_histogram("serve.chunk_ns", &h);
        t.snapshot()
    }

    #[test]
    fn json_round_trips_through_parse() {
        let snap = sample_snapshot(2);
        let (target, back) = parse_snapshot(&snap.to_json("demand")).unwrap();
        assert_eq!(target, "demand");
        assert_eq!(back.to_json("demand"), snap.to_json("demand"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse_snapshot("{}").is_err());
        assert!(parse_snapshot("{\"target\":\"x\",\"counters\":{}}").is_err());
        // A bucket list that does not sum to `count`.
        let bad = "{\"target\":\"x\",\"counters\":{},\"gauges\":{},\
                   \"histograms\":{\"h\":{\"count\":5,\"sum\":1,\
                   \"p50\":1,\"p90\":1,\"p99\":1,\"buckets\":[[1,2]]}}}";
        assert!(parse_snapshot(bad).is_err());
    }

    #[test]
    fn shard_merge_round_trips_and_validates() {
        if !dcn_telemetry::compiled() {
            return;
        }
        let dir = std::env::temp_dir().join(format!("rdcn-telem-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (a, b) = (sample_snapshot(1), sample_snapshot(3));
        let s0 = ShardSpec::parse("0/2").unwrap();
        let s1 = ShardSpec::parse("1/2").unwrap();
        std::fs::write(
            dir.join(telem_shard_file_name("demand", s0)),
            a.to_json("demand"),
        )
        .unwrap();
        std::fs::write(
            dir.join(telem_shard_file_name("demand", s1)),
            b.to_json("demand"),
        )
        .unwrap();

        let (merged, paths) = merge_target_dir(&dir, "demand").unwrap();
        assert_eq!(paths.len(), 2);
        let mut expect = Snapshot::default();
        expect.absorb(&a);
        expect.absorb(&b);
        assert_eq!(merged.to_json("demand"), expect.to_json("demand"));
        // Absorb order doesn't matter.
        let mut swapped = Snapshot::default();
        swapped.absorb(&b);
        swapped.absorb(&a);
        assert_eq!(merged.to_json("demand"), swapped.to_json("demand"));

        // A missing shard is a hard error.
        std::fs::remove_file(dir.join(telem_shard_file_name("demand", s1))).unwrap();
        let err = merge_target_dir(&dir, "demand").unwrap_err();
        assert!(err.contains("missing telemetry shard 1-of-2"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn projection_keeps_deterministic_counters_only() {
        if !dcn_telemetry::compiled() {
            return;
        }
        let p = projection(&sample_snapshot(1));
        assert_eq!(p.get("serve.requests"), Some(&100));
        assert_eq!(p.get("serve.chunk_ns:count"), Some(&40));
        assert!(!p.contains_key("sweep.worker.0.steals"));
        assert!(!p.contains_key("sweep.worker.0.busy_ns"));
        assert!(!p.contains_key("intra.imbalance_pct"));
    }

    #[test]
    fn diff_projection_reports_divergence() {
        if !dcn_telemetry::compiled() {
            return;
        }
        let (a, b) = (sample_snapshot(1), sample_snapshot(2));
        assert!(diff_projection(&a, &a).is_ok());
        let err = diff_projection(&a, &b).unwrap_err();
        assert!(err.contains("serve.requests: 100 vs 200"), "{err}");
    }

    #[test]
    fn summary_table_lists_counters_and_percentiles() {
        if !dcn_telemetry::compiled() {
            return;
        }
        let s = summary_table(&sample_snapshot(1));
        assert!(s.contains("| serve.requests | 100 |"));
        assert!(s.contains("| serve.chunk_ns |"));
        assert!(s.contains("(gauge)"));
    }
}

//! # dcn-bench
//!
//! The figure-reproduction harness. Every figure panel of the paper's
//! evaluation (§3.2) and every ablation listed in DESIGN.md is regenerated
//! either by the `repro_figures` binary (series printed as markdown/CSV) or
//! by the Criterion benches (micro-level timing claims).
//!
//! Mapping (see DESIGN.md §4 for the full experiment index):
//!
//! | Paper artifact | Harness entry |
//! |---|---|
//! | Fig. 1a/1b/1c (Facebook Database) | `repro_figures fig1` |
//! | Fig. 2a/2b/2c (Facebook Web)      | `repro_figures fig2` |
//! | Fig. 3a/3b/3c (Facebook Hadoop)   | `repro_figures fig3` |
//! | Fig. 4a/4b/4c (Microsoft)         | `repro_figures fig4` |
//! | Ablations A–E                     | `repro_figures ablation-*` / `lower-bound` |
//! | beyond-paper scaling (10⁵ → 10⁷)  | `repro_figures scaling` |
//! | executor scaling (skewed grids)   | `repro_figures sweep` |
//! | per-request latency vs b          | `cargo bench -p dcn-bench` |
//!
//! Workloads are described by [`dcn_traces::TraceSpec`] and streamed
//! per-job inside [`dcn_core::sweep::run_jobs`], so figure runs hold O(1)
//! trace memory regardless of `--scale`; only the offline SO-BMA series
//! materializes (one repetition at a time).

pub mod ablations;
pub mod adversary;
pub mod demand;
pub mod ledger;
pub mod shard;
pub mod telem;

pub use ablations::{
    ablation_alpha, ablation_augmentation, ablation_removal, ablation_skew, lower_bound_gap,
    SimpleTable,
};
pub use adversary::{adversary_search, genomes_to_json};
pub use demand::{demand_sweep, demand_sweep_supervised};
pub use ledger::{locked_update, measure_standard_point, Ledger, LedgerEntry};
pub use shard::{merge_tables, merged_file_name, shard_file_name};

use dcn_core::algorithms::static_offline::so_bma_series;
use dcn_core::algorithms::AlgorithmKind;
use dcn_core::report::AveragedSeries;
use dcn_core::sweep::{resolve_threads, run_jobs, run_jobs_sequential, Job, ShardSpec};
use dcn_core::RunReport;
use dcn_topology::{builders, DistanceMatrix};
use dcn_traces::{FacebookCluster, MicrosoftParams, Trace, TraceSpec};
use dcn_util::rngx::derive_seed;
use std::sync::Arc;

/// Workload selector for figure specs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Workload {
    /// Facebook Database cluster stand-in (Fig. 1).
    FacebookDb,
    /// Facebook Web-Service cluster stand-in (Fig. 2).
    FacebookWeb,
    /// Facebook Hadoop cluster stand-in (Fig. 3).
    FacebookHadoop,
    /// Microsoft i.i.d. traffic-matrix stand-in (Fig. 4).
    Microsoft,
    /// Pure-Zipf pair trace with the given exponent (skew ablation).
    Zipf(f64),
    /// Uniform traffic (structure-free reference).
    Uniform,
}

/// A reproducible figure configuration.
#[derive(Clone, Debug)]
pub struct FigureSpec {
    /// Identifier, e.g. `fig1`.
    pub id: &'static str,
    /// Human title matching the paper.
    pub title: &'static str,
    /// Workload generator.
    pub workload: Workload,
    /// Number of racks (100 for Facebook figures, 50 for Microsoft).
    pub racks: usize,
    /// The b values swept in panel (a)/(b); the last is panel (c)'s b.
    pub bs: Vec<usize>,
    /// Trace length.
    pub total_requests: usize,
    /// Number of x-axis points.
    pub num_checkpoints: usize,
    /// Reconfiguration cost α.
    pub alpha: u64,
    /// Seed repetitions averaged per configuration (paper: 5).
    pub repetitions: u64,
}

impl FigureSpec {
    /// The four figures of §3.2 at paper scale.
    pub fn paper_figures() -> Vec<FigureSpec> {
        vec![
            FigureSpec {
                id: "fig1",
                title: "Facebook Database cluster",
                workload: Workload::FacebookDb,
                racks: 100,
                bs: vec![6, 12, 18],
                total_requests: 350_000,
                num_checkpoints: 14,
                alpha: 10,
                repetitions: 5,
            },
            FigureSpec {
                id: "fig2",
                title: "Facebook Web Service cluster",
                workload: Workload::FacebookWeb,
                racks: 100,
                bs: vec![6, 12, 18],
                total_requests: 400_000,
                num_checkpoints: 14,
                alpha: 10,
                repetitions: 5,
            },
            FigureSpec {
                id: "fig3",
                title: "Facebook Hadoop cluster",
                workload: Workload::FacebookHadoop,
                racks: 100,
                bs: vec![6, 12, 18],
                total_requests: 185_000,
                num_checkpoints: 14,
                alpha: 10,
                repetitions: 5,
            },
            FigureSpec {
                id: "fig4",
                title: "Microsoft cluster",
                workload: Workload::Microsoft,
                racks: 50,
                bs: vec![3, 6, 9],
                total_requests: 1_750_000,
                num_checkpoints: 14,
                alpha: 10,
                repetitions: 5,
            },
        ]
    }

    /// Looks up a paper figure by id.
    pub fn by_id(id: &str) -> Option<FigureSpec> {
        Self::paper_figures().into_iter().find(|f| f.id == id)
    }

    /// A proportionally scaled-down copy (for smoke tests / fast mode).
    pub fn scaled(&self, divisor: usize) -> FigureSpec {
        let mut s = self.clone();
        s.total_requests = (s.total_requests / divisor).max(s.num_checkpoints);
        s.repetitions = s.repetitions.min(2);
        s
    }

    /// The `--scale` knob: multiplies the request count by `factor`
    /// (e.g. `10.0` turns the 350k-request Fig. 1 into a 3.5M-request run —
    /// feasible at constant memory because workloads stream). At least one
    /// request per checkpoint is kept.
    pub fn scaled_by(&self, factor: f64) -> FigureSpec {
        assert!(factor > 0.0, "scale factor must be positive");
        let mut s = self.clone();
        s.total_requests = ((s.total_requests as f64 * factor).round() as usize)
            .max(s.num_checkpoints)
            .max(1);
        s
    }

    /// The workload description for repetition `rep` (each repetition gets
    /// fresh workload randomness, as in the paper's 5-run averaging).
    pub fn trace_spec(&self, rep: u64) -> TraceSpec {
        let seed = derive_seed(0xF16, rep);
        let (num_racks, len) = (self.racks, self.total_requests);
        match self.workload {
            Workload::FacebookDb => TraceSpec::Facebook {
                cluster: FacebookCluster::Database,
                num_racks,
                len,
                seed,
            },
            Workload::FacebookWeb => TraceSpec::Facebook {
                cluster: FacebookCluster::WebService,
                num_racks,
                len,
                seed,
            },
            Workload::FacebookHadoop => TraceSpec::Facebook {
                cluster: FacebookCluster::Hadoop,
                num_racks,
                len,
                seed,
            },
            Workload::Microsoft => TraceSpec::Microsoft {
                num_racks,
                len,
                params: MicrosoftParams::default(),
                seed,
            },
            Workload::Zipf(s) => TraceSpec::Zipf {
                num_racks,
                len,
                exponent: s,
                seed,
            },
            Workload::Uniform => TraceSpec::Uniform {
                num_racks,
                len,
                seed,
            },
        }
    }

    /// Materializes the trace for repetition `rep` (offline baselines and
    /// benches only; figure sweeps stream via [`FigureSpec::trace_spec`]).
    pub fn trace(&self, rep: u64) -> Trace {
        self.trace_spec(rep).as_trace().into_owned()
    }

    /// Fat-tree distance matrix for this spec's rack count.
    pub fn distances(&self) -> Arc<DistanceMatrix> {
        let net = builders::fat_tree_with_racks(self.racks);
        Arc::new(DistanceMatrix::between_racks_parallel(&net, 4))
    }

    /// The checkpoint grid.
    pub fn checkpoints(&self) -> Vec<usize> {
        dcn_core::SimConfig::evenly_spaced(self.total_requests, self.num_checkpoints)
    }
}

/// Panel selector for figure runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Panel {
    /// Routing cost, b-sweep + oblivious (Figs. *a).
    RoutingCost,
    /// Execution time, b-sweep (Figs. *b) — always run sequentially.
    ExecutionTime,
    /// Best-of comparison at max b incl. SO-BMA (Figs. *c).
    BestOf,
}

/// Runs one panel of a figure; returns one averaged series per legend entry.
pub fn run_panel(spec: &FigureSpec, panel: Panel, threads: usize) -> Vec<AveragedSeries> {
    match panel {
        Panel::RoutingCost => {
            let mut series = run_b_sweep(spec, threads, |c| c.routing_cost as f64);
            series.push(oblivious_series(spec, threads));
            series
        }
        Panel::ExecutionTime => run_b_sweep_sequential(spec, |c| c.elapsed_secs),
        Panel::BestOf => best_of_series(spec, threads),
    }
}

/// One job per repetition; every job carries its own trace spec, so the
/// whole repetition grid fans out in a single `run_jobs` call with no
/// shared trace.
fn grid_jobs(spec: &FigureSpec, algorithm: AlgorithmKind, b: usize) -> Vec<Job> {
    (0..spec.repetitions)
        .map(|rep| Job {
            algorithm: algorithm.clone(),
            b,
            alpha: spec.alpha,
            seed: derive_seed(0xA1, rep),
            checkpoints: spec.checkpoints(),
            trace: spec.trace_spec(rep),
        })
        .collect()
}

/// Runs R-BMA and BMA for every b, averaging `metric` across repetitions.
fn run_b_sweep(
    spec: &FigureSpec,
    threads: usize,
    metric: impl Fn(&dcn_core::Checkpoint) -> f64 + Copy,
) -> Vec<AveragedSeries> {
    let dm = spec.distances();
    let mut out = Vec::new();
    for algorithm in [AlgorithmKind::Rbma { lazy: true }, AlgorithmKind::Bma] {
        for &b in &spec.bs {
            let reports = run_reps(spec, &dm, algorithm.clone(), b, threads);
            out.push(AveragedSeries::from_reports(
                format!("{} (b: {b})", algorithm.label()),
                &reports,
                metric,
            ));
        }
    }
    out
}

/// Like [`run_b_sweep`] but strictly sequential (wall-clock fidelity) and
/// with the elapsed-seconds metric.
fn run_b_sweep_sequential(
    spec: &FigureSpec,
    metric: impl Fn(&dcn_core::Checkpoint) -> f64 + Copy,
) -> Vec<AveragedSeries> {
    let dm = spec.distances();
    let mut out = Vec::new();
    for algorithm in [AlgorithmKind::Rbma { lazy: true }, AlgorithmKind::Bma] {
        for &b in &spec.bs {
            let reports = run_jobs_sequential(&dm, &grid_jobs(spec, algorithm.clone(), b));
            out.push(AveragedSeries::from_reports(
                format!("{} (b: {b})", algorithm.label()),
                &reports,
                metric,
            ));
        }
    }
    out
}

fn run_reps(
    spec: &FigureSpec,
    dm: &Arc<DistanceMatrix>,
    algorithm: AlgorithmKind,
    b: usize,
    threads: usize,
) -> Vec<RunReport> {
    run_jobs(dm, &grid_jobs(spec, algorithm, b), threads)
}

fn oblivious_series(spec: &FigureSpec, threads: usize) -> AveragedSeries {
    let dm = spec.distances();
    let reports = run_reps(spec, &dm, AlgorithmKind::Oblivious, spec.bs[0], threads);
    AveragedSeries::from_reports("Oblivious", &reports, |c| c.routing_cost as f64)
}

/// Panel (c): R-BMA vs BMA vs SO-BMA at the largest b.
fn best_of_series(spec: &FigureSpec, threads: usize) -> Vec<AveragedSeries> {
    let dm = spec.distances();
    let b = *spec.bs.last().expect("non-empty b sweep");
    let mut out = Vec::new();
    for algorithm in [AlgorithmKind::Rbma { lazy: true }, AlgorithmKind::Bma] {
        let reports = run_reps(spec, &dm, algorithm.clone(), b, threads);
        out.push(AveragedSeries::from_reports(
            format!("{} (b: {b})", algorithm.label()),
            &reports,
            |c| c.routing_cost as f64,
        ));
    }
    // SO-BMA: clairvoyant static matching recomputed per checkpoint. Offline
    // by definition, so this is the one place a figure materializes its
    // trace — one repetition at a time, freed before the next.
    let cps = spec.checkpoints();
    let mut per_rep: Vec<Vec<f64>> = Vec::new();
    for rep in 0..spec.repetitions {
        let trace = spec.trace(rep);
        let series = so_bma_series(&dm, &trace.requests, b, &cps);
        per_rep.push(series.into_iter().map(|(_, cost)| cost as f64).collect());
    }
    let x: Vec<u64> = cps.iter().map(|&c| c as u64).collect();
    let mut y_mean = Vec::with_capacity(x.len());
    let mut y_std = Vec::with_capacity(x.len());
    for i in 0..x.len() {
        let samples: Vec<f64> = per_rep.iter().map(|r| r[i]).collect();
        let s = dcn_util::summarize(&samples);
        y_mean.push(s.mean);
        y_std.push(s.stddev);
    }
    out.push(AveragedSeries {
        label: format!("SO-BMA (b: {b})"),
        x,
        y_mean,
        y_std,
    });
    out
}

/// The standing adversarial worst-case panel seeded into the figure and
/// demand targets (the PR 6 follow-up in ROADMAP): one row per
/// committed corpus entry (`crates/adversary/corpus/*.json`). Each
/// entry is replay-gated first ([`CorpusEntry::verify`] pins its
/// discovered costs), then the genome trace runs through R-BMA (sorted
/// batched), BMA and Oblivious on the entry's own topology and (b, α)
/// — so every figure run exercises the discovered nemesis traces, not
/// only the `scaling` target.
///
/// [`CorpusEntry::verify`]: dcn_adversary::CorpusEntry::verify
pub fn worst_case_panel() -> SimpleTable {
    let mut rows = Vec::new();
    for (name, entry) in dcn_adversary::committed_entries() {
        entry
            .verify()
            .unwrap_or_else(|report| panic!("worst-case panel gate: {report}"));
        let trace = entry.genome.as_trace();
        let adm = dcn_adversary::search::search_topology(entry.num_racks);
        let run = |algorithm: &AlgorithmKind| {
            let config = dcn_core::SimConfig {
                seed: entry.algo_seed,
                trace_name: trace.name.clone(),
                ..Default::default()
            };
            let mut scheduler =
                algorithm.build_online(Arc::clone(&adm), entry.b, entry.alpha, entry.algo_seed);
            dcn_core::run(
                scheduler.as_mut(),
                &adm,
                entry.alpha,
                &trace.requests,
                &config,
            )
        };
        let rbma = run(&AlgorithmKind::Rbma { lazy: true });
        let bma = run(&AlgorithmKind::Bma);
        let oblivious = run(&AlgorithmKind::Oblivious);
        rows.push((
            format!(
                "worst-case {name} (n={}, b={}, α={})",
                entry.num_racks, entry.b, entry.alpha
            ),
            vec![
                rbma.total.total_cost() as f64,
                bma.total.total_cost() as f64,
                oblivious.total.routing_cost as f64,
                entry.ratio,
            ],
        ));
    }
    SimpleTable {
        title: "Adversarial worst-case panel: committed corpus genomes, replay-gated \
                (pinned ratio = discovered cost vs SO-BMA)"
            .into(),
        columns: vec![
            "R-BMA total".into(),
            "BMA total".into(),
            "Oblivious routing".into(),
            "pinned cost ratio".into(),
        ],
        rows,
        statuses: Vec::new(),
    }
}

/// The `scaling` target: online algorithms over streamed workloads of
/// growing length (default 10⁵ → 10⁷ requests) at constant trace memory —
/// the beyond-paper scenario the streaming pipeline exists for. Returns one
/// row per length with total costs and serve-loop throughput, in **both**
/// serve modes: batched (the production default,
/// [`dcn_core::simulator::DEFAULT_BATCH_SIZE`]) and unbatched
/// (`batch_size = 1`, the historical per-request loop) — the ratio column
/// is the measured win of the batched pipeline. Costs are asserted
/// identical across modes on every row (the batching equivalence contract,
/// live in production output, not only in tests).
///
/// Two further live contracts per row:
///
/// * **BMA recency oracle.** The flat-intrusive-LRU BMA is replayed against
///   [`dcn_core::algorithms::bma::BmaBTree`] (the historical `BTreeMap`
///   recency) and the full seeded `RunReport`s — total cost,
///   reconfiguration count, every checkpoint — are asserted identical; the
///   reference's throughput and the flat/btree speedup are reported as
///   columns, so the flattening win ships in the artifact.
/// * Batched ≡ unbatched costs, as before.
///
/// Simulation runs stay strictly sequential (the table reports wall-clock
/// throughput, and timing runs must not share cores — same rule as the
/// execution-time panels); `threads` only accelerates the one non-timed
/// setup step (the APSP distance build). `shard` selects which rows (by
/// original index, so seeds are unchanged) this invocation computes.
///
/// PR 7 additions, both live in the artifact:
///
/// * **Four-path equivalence.** Every length row runs R-BMA through all
///   four serve paths — bucketed/sorted (the new default), unsorted
///   batched (the PR 5 fused loop), per-request (`batch_size = 1`), and
///   intra-sharded (`intra_threads` workers over one run) — and asserts
///   the full seeded `RunReport`s identical across all of them; BMA and
///   Oblivious are cross-checked sorted-vs-per-request the same way. The
///   unsorted and intra-sharded R-BMA throughputs become columns, so the
///   bucketing win and the sharding behaviour ship with every run.
/// * **Worst-case panel.** Every committed adversarial corpus entry
///   (`crates/adversary/corpus/*.json`) appends a standing row: the entry
///   is first replayed to its pinned costs ([`CorpusEntry::verify`] as
///   gate), then its genome trace runs through the same column set on the
///   entry's own topology and (b, α) — the discovered nemesis traces
///   exercise the serve paths in the live table, not only in tests.
///   Corpus rows shard by continued index (`lens.len() + i`).
///
/// PR 9 additions:
///
/// * **BMA joins the sharded world.** Every row also runs BMA through
///   its intra-sharded bucketed pass (`intra_threads` workers over the
///   preprocessing scan) and asserts the full report identical to the
///   fused loop — `--intra-threads` is no longer an R-BMA-only flag;
///   the BMA intra throughput is a column.
/// * **Measured specials share.** The runs meter into a local
///   telemetry sink (merged into the process-global one afterwards, so
///   `--telemetry` artifacts stay whole); the second return value is
///   the observed `rbma.specials` share of all R-BMA requests served —
///   `None` when the telemetry layer is compiled out
///   (`--cfg dcn_telemetry_off`). The caller prints it as the target
///   footer.
///
/// [`CorpusEntry::verify`]: dcn_adversary::CorpusEntry::verify
pub fn scaling_sweep(
    lens: &[usize],
    threads: usize,
    shard: ShardSpec,
    intra_threads: usize,
) -> (SimpleTable, Option<f64>) {
    use dcn_core::ServeMode;
    let racks = 100;
    let b = 12;
    let alpha = 10u64;
    let exponent = 1.2;
    let intra = dcn_core::parallel::resolve_intra(intra_threads);
    let net = builders::fat_tree_with_racks(racks);
    let dm = Arc::new(DistanceMatrix::between_racks_parallel(
        &net,
        resolve_threads(threads),
    ));
    // Local metering sink: the measured runs flush here first so the
    // footer can report the observed specials share; the snapshot merges
    // into the process-global sink at the end (a no-op when none is
    // installed), keeping `--telemetry` artifacts whole.
    let specials_sink = dcn_telemetry::Telemetry::enabled();
    let run_streamed =
        |spec: &TraceSpec, algorithm: &AlgorithmKind, batch_size: usize, mode, intra_w| {
            let mut source = spec.source();
            let mut config = dcn_core::SimConfig {
                seed: 7,
                trace_name: spec.name(),
                ..Default::default()
            }
            .with_batch_size(batch_size)
            .with_serve_mode(mode)
            .with_intra_threads(intra_w);
            config.telemetry = specials_sink.clone();
            let mut scheduler = algorithm.build_online(Arc::clone(&dm), b, alpha, 7);
            dcn_core::run(scheduler.as_mut(), &dm, alpha, source.as_mut(), &config)
        };
    let throughput = |r: &dcn_core::RunReport| {
        if r.total.elapsed_secs > 0.0 {
            r.total.requests as f64 / r.total.elapsed_secs / 1e6
        } else {
            f64::NAN
        }
    };
    // The BTreeMap-recency reference BMA, run through the identical config:
    // the live equivalence oracle plus the before/after throughput point.
    let run_reference_bma = |spec: &TraceSpec, batch_size: usize| {
        let mut source = spec.source();
        let config = dcn_core::SimConfig {
            seed: 7,
            trace_name: spec.name(),
            ..Default::default()
        }
        .with_batch_size(batch_size);
        let mut scheduler = dcn_core::algorithms::bma::BmaBTree::new(Arc::clone(&dm), b, alpha);
        dcn_core::run(&mut scheduler, &dm, alpha, source.as_mut(), &config)
    };
    let batched = dcn_core::simulator::DEFAULT_BATCH_SIZE;
    let mut rows = Vec::new();
    // Denominator of the footer's specials share: every R-BMA run's
    // requests (all four serve paths bump `rbma.specials` identically).
    let mut rbma_requests = 0u64;
    for (i, &len) in lens.iter().enumerate() {
        if !shard.owns(i) {
            continue;
        }
        let spec = TraceSpec::Zipf {
            num_racks: racks,
            len,
            exponent,
            seed: derive_seed(0x5CA1E, i as u64),
        };
        let rbma_kind = AlgorithmKind::Rbma { lazy: true };
        let rbma = run_streamed(&spec, &rbma_kind, batched, ServeMode::Sorted, 1);
        let bma = run_streamed(&spec, &AlgorithmKind::Bma, batched, ServeMode::Sorted, 1);
        let oblivious = run_streamed(
            &spec,
            &AlgorithmKind::Oblivious,
            batched,
            ServeMode::Sorted,
            1,
        );
        let rbma_unsorted = run_streamed(&spec, &rbma_kind, batched, ServeMode::Unsorted, 1);
        let rbma_unbatched = run_streamed(&spec, &rbma_kind, 1, ServeMode::Unsorted, 1);
        let rbma_sharded = run_streamed(&spec, &rbma_kind, batched, ServeMode::Sorted, intra);
        let bma_sharded = run_streamed(
            &spec,
            &AlgorithmKind::Bma,
            batched,
            ServeMode::Sorted,
            intra,
        );
        rbma_requests += rbma.total.requests * 4;
        // Flat-LRU BMA vs the BTreeMap reference: every seeded report field
        // must match, live in the production target, not only in tests.
        let bma_btree = run_reference_bma(&spec, batched);
        assert_reports_equal(&bma, &bma_btree, "BMA flat-LRU vs BTreeMap recency");
        // The four-path contract, live: sorted ≡ unsorted ≡ per-request ≡
        // intra-sharded, on every seeded report field.
        assert_reports_equal(&rbma, &rbma_unsorted, "R-BMA sorted vs unsorted batched");
        assert_reports_equal(&rbma, &rbma_unbatched, "R-BMA sorted vs per-request");
        assert_reports_equal(
            &rbma,
            &rbma_sharded,
            &format!("R-BMA sorted vs intra-sharded ({intra} workers)"),
        );
        assert_reports_equal(
            &bma,
            &bma_sharded,
            &format!("BMA fused vs intra-sharded bucketed ({intra} workers)"),
        );
        for (batched_report, algorithm) in [
            (&bma, AlgorithmKind::Bma),
            (&oblivious, AlgorithmKind::Oblivious),
        ] {
            let unbatched = run_streamed(&spec, &algorithm, 1, ServeMode::Unsorted, 1);
            assert_reports_equal(
                batched_report,
                &unbatched,
                &format!("{}: sorted batched vs per-request", algorithm.label()),
            );
        }
        let fast = throughput(&rbma);
        let slow = throughput(&rbma_unbatched);
        let unsorted_tp = throughput(&rbma_unsorted);
        let bma_fast = throughput(&bma);
        let bma_btree_tp = throughput(&bma_btree);
        rows.push((
            format!("{len} requests"),
            vec![
                rbma.total.total_cost() as f64,
                bma.total.total_cost() as f64,
                oblivious.total.routing_cost as f64,
                fast,
                bma_fast,
                bma_btree_tp,
                bma_fast / bma_btree_tp,
                slow,
                fast / slow,
                unsorted_tp,
                fast / unsorted_tp,
                throughput(&rbma_sharded),
                throughput(&bma_sharded),
            ],
        ));
    }
    // Standing worst-case panel: one row per committed adversarial corpus
    // entry, replay-gated, over the entry's own topology and parameters.
    for (ci, (name, entry)) in dcn_adversary::committed_entries().iter().enumerate() {
        if !shard.owns(lens.len() + ci) {
            continue;
        }
        entry
            .verify()
            .unwrap_or_else(|report| panic!("worst-case panel gate: {report}"));
        let trace = entry.genome.as_trace();
        let adm = dcn_adversary::search::search_topology(entry.num_racks);
        let run_adv = |algorithm: &AlgorithmKind, batch_size: usize, mode, intra_w| {
            let mut config = dcn_core::SimConfig {
                seed: entry.algo_seed,
                trace_name: trace.name.clone(),
                ..Default::default()
            }
            .with_batch_size(batch_size)
            .with_serve_mode(mode)
            .with_intra_threads(intra_w);
            config.telemetry = specials_sink.clone();
            let mut scheduler =
                algorithm.build_online(Arc::clone(&adm), entry.b, entry.alpha, entry.algo_seed);
            dcn_core::run(
                scheduler.as_mut(),
                &adm,
                entry.alpha,
                &trace.requests,
                &config,
            )
        };
        let rbma_kind = AlgorithmKind::Rbma { lazy: true };
        let rbma = run_adv(&rbma_kind, batched, ServeMode::Sorted, 1);
        let bma = run_adv(&AlgorithmKind::Bma, batched, ServeMode::Sorted, 1);
        let oblivious = run_adv(&AlgorithmKind::Oblivious, batched, ServeMode::Sorted, 1);
        let rbma_unsorted = run_adv(&rbma_kind, batched, ServeMode::Unsorted, 1);
        let rbma_unbatched = run_adv(&rbma_kind, 1, ServeMode::Unsorted, 1);
        let rbma_sharded = run_adv(&rbma_kind, batched, ServeMode::Sorted, intra);
        let bma_sharded = run_adv(&AlgorithmKind::Bma, batched, ServeMode::Sorted, intra);
        rbma_requests += rbma.total.requests * 4;
        let bma_btree = {
            let config = dcn_core::SimConfig {
                seed: entry.algo_seed,
                trace_name: trace.name.clone(),
                ..Default::default()
            }
            .with_batch_size(batched);
            let mut scheduler =
                dcn_core::algorithms::bma::BmaBTree::new(Arc::clone(&adm), entry.b, entry.alpha);
            dcn_core::run(&mut scheduler, &adm, entry.alpha, &trace.requests, &config)
        };
        let ctx = format!("worst-case {name}");
        assert_reports_equal(&rbma, &rbma_unsorted, &ctx);
        assert_reports_equal(&rbma, &rbma_unbatched, &ctx);
        assert_reports_equal(&rbma, &rbma_sharded, &ctx);
        assert_reports_equal(&bma, &bma_sharded, &ctx);
        assert_reports_equal(&bma, &bma_btree, &ctx);
        let fast = throughput(&rbma);
        let slow = throughput(&rbma_unbatched);
        let unsorted_tp = throughput(&rbma_unsorted);
        let bma_fast = throughput(&bma);
        let bma_btree_tp = throughput(&bma_btree);
        rows.push((
            format!("worst-case {name}"),
            vec![
                rbma.total.total_cost() as f64,
                bma.total.total_cost() as f64,
                oblivious.total.routing_cost as f64,
                fast,
                bma_fast,
                bma_btree_tp,
                bma_fast / bma_btree_tp,
                slow,
                fast / slow,
                unsorted_tp,
                fast / unsorted_tp,
                throughput(&rbma_sharded),
                throughput(&bma_sharded),
            ],
        ));
    }
    // Merge the metered counters outward, then derive the footer share.
    let metered = specials_sink.snapshot();
    dcn_telemetry::global().merge(&metered);
    let specials_share = metered
        .counters
        .get("rbma.specials")
        .map(|&s| s as f64 / rbma_requests.max(1) as f64);
    let table = SimpleTable {
        title: format!(
            "Scaling: streamed Zipf(s={exponent}) workloads, {racks} racks, b={b}, α={alpha} \
             (O(1) trace memory; serve batch={batched} vs 1; intra={intra}) \
             + adversarial worst-case panel"
        ),
        columns: vec![
            "R-BMA total".into(),
            "BMA total".into(),
            "Oblivious routing".into(),
            "R-BMA Mreq/s".into(),
            "BMA Mreq/s".into(),
            "BMA Mreq/s (btree recency)".into(),
            "BMA recency speedup".into(),
            "R-BMA Mreq/s (batch=1)".into(),
            "batch speedup".into(),
            "R-BMA Mreq/s (unsorted)".into(),
            "sorted speedup".into(),
            format!("R-BMA Mreq/s (intra={intra})"),
            format!("BMA Mreq/s (intra={intra})"),
        ],
        rows,
        statuses: Vec::new(),
    };
    (table, specials_share)
}

/// Asserts two reports are identical in every deterministic field (all
/// costs, counts, and checkpoints; wall-clock excluded).
fn assert_reports_equal(a: &RunReport, b: &RunReport, ctx: &str) {
    assert_eq!(a.total.requests, b.total.requests, "{ctx}");
    assert_eq!(a.total.routing_cost, b.total.routing_cost, "{ctx}");
    assert_eq!(a.total.reconfig_cost, b.total.reconfig_cost, "{ctx}");
    assert_eq!(a.total.reconfigurations, b.total.reconfigurations, "{ctx}");
    assert_eq!(a.total.matched_requests, b.total.matched_requests, "{ctx}");
    assert_eq!(a.checkpoints.len(), b.checkpoints.len(), "{ctx}");
    for (x, y) in a.checkpoints.iter().zip(&b.checkpoints) {
        assert_eq!(x.requests, y.requests, "{ctx}");
        assert_eq!(x.routing_cost, y.routing_cost, "{ctx}");
        assert_eq!(x.reconfig_cost, y.reconfig_cost, "{ctx}");
        assert_eq!(x.reconfigurations, y.reconfigurations, "{ctx}");
        assert_eq!(x.matched_requests, y.matched_requests, "{ctx}");
    }
}

/// The `sweep` target: wall-clock scaling of the work-stealing
/// [`run_jobs`] executor on a deliberately **skewed** job mix (two
/// heavyweight runs next to a tail of small ones — the shape that strands
/// cores behind a static split). One row per worker count: seconds,
/// aggregate serve throughput, speedup vs one worker, the ideal speedup on
/// this host (`min(workers, cores)`), and efficiency = speedup/ideal.
/// Every parallel run's reports are asserted identical to the sequential
/// ones (the executor's determinism contract, live in the artifact).
///
/// Worker counts, not hosts, are the axis — multi-host splits are the
/// `--shard` flag's job (`shard` here selects table rows, by original
/// index, like every other table target).
pub fn sweep_scaling(scale: f64, shard: ShardSpec) -> SimpleTable {
    assert!(scale > 0.0, "scale factor must be positive");
    let racks = 100;
    let b = 12;
    let alpha = 10u64;
    let big = ((1_000_000.0 * scale).round() as usize).max(2_000);
    let small = (big / 8).max(250);
    let net = builders::fat_tree_with_racks(racks);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    // Two big jobs up front, then a tail of small ones in mixed algorithm
    // order: a static split of this grid idles half its workers.
    let mut jobs = Vec::new();
    for (j, &len) in [
        big, big, small, small, small, small, small, small, small, small,
    ]
    .iter()
    .enumerate()
    {
        let algorithm = if j % 2 == 0 {
            AlgorithmKind::Rbma { lazy: true }
        } else {
            AlgorithmKind::Bma
        };
        jobs.push(Job {
            algorithm,
            b,
            alpha,
            seed: derive_seed(0x57EA, j as u64),
            checkpoints: vec![],
            trace: TraceSpec::Zipf {
                num_racks: racks,
                len,
                exponent: 1.2,
                seed: derive_seed(0x57EB, j as u64),
            },
        });
    }
    let total_requests: usize = jobs.iter().map(|j| j.trace.len()).sum();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    let worker_counts = [1usize, 2, 4, 8];
    let any_owned = (0..worker_counts.len()).any(|i| shard.owns(i));
    // The sequential run doubles as the speedup baseline and the
    // determinism reference.
    let (reference, seq_secs) = if any_owned {
        let start = std::time::Instant::now();
        let reports = run_jobs_sequential(&dm, &jobs);
        (Some(reports), start.elapsed().as_secs_f64())
    } else {
        (None, 0.0)
    };
    let mut rows = Vec::new();
    for (i, &workers) in worker_counts.iter().enumerate() {
        if !shard.owns(i) {
            continue;
        }
        let reference = reference.as_ref().expect("computed when any row is owned");
        let start = std::time::Instant::now();
        let reports = run_jobs(&dm, &jobs, workers);
        let secs = start.elapsed().as_secs_f64();
        for (k, (got, want)) in reports.iter().zip(reference).enumerate() {
            assert_reports_equal(
                got,
                want,
                &format!("work-stealing vs sequential, job {k} ({workers} workers)"),
            );
        }
        let ideal = workers.min(cores) as f64;
        // On a single-core host a measured "speedup" is pure scheduling
        // noise around 1.0 — report n/a instead of a misleading ≈1.0×.
        let (speedup, efficiency) = if cores == 1 {
            (f64::NAN, f64::NAN)
        } else {
            let s = seq_secs / secs;
            (s, s / ideal)
        };
        rows.push((
            format!("{workers} workers"),
            vec![
                secs,
                total_requests as f64 / secs / 1e6,
                speedup,
                ideal,
                efficiency,
            ],
        ));
    }
    let core_note = if cores == 1 {
        "; 1 core: speedup n/a"
    } else {
        ""
    };
    SimpleTable {
        title: format!(
            "Sweep executor scaling: work-stealing run_jobs over a skewed job mix \
             ({} jobs, 2×{big} + 8×{small} requests, Zipf s=1.2, {racks} racks, b={b}{core_note})",
            jobs.len()
        ),
        columns: vec![
            "seconds".into(),
            "Mreq/s aggregate".into(),
            "speedup vs 1 worker".into(),
            "ideal (min(workers, cores))".into(),
            "efficiency".into(),
        ],
        rows,
        statuses: Vec::new(),
    }
}

/// Renders series as a markdown table (x column + one column per series).
pub fn series_to_markdown(title: &str, series: &[AveragedSeries]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "### {title}\n");
    let _ = write!(out, "| #Requests |");
    for s in series {
        let _ = write!(out, " {} |", s.label);
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in series {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    let rows = series.first().map_or(0, |s| s.x.len());
    for i in 0..rows {
        let _ = write!(out, "| {} |", series[0].x[i]);
        for s in series {
            let _ = write!(out, " {:.4} |", s.y_mean[i]);
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders series as CSV (long format: series,x,y_mean,y_std).
pub fn series_to_csv(series: &[AveragedSeries]) -> String {
    let mut out = String::from("series,requests,mean,stddev\n");
    for s in series {
        for i in 0..s.x.len() {
            out.push_str(&format!(
                "{},{},{},{}\n",
                s.label, s.x[i], s.y_mean[i], s.y_std[i]
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> FigureSpec {
        FigureSpec {
            id: "test",
            title: "tiny",
            workload: Workload::FacebookDb,
            racks: 20,
            bs: vec![2, 4],
            total_requests: 4000,
            num_checkpoints: 4,
            alpha: 10,
            repetitions: 2,
        }
    }

    #[test]
    fn panel_a_has_expected_legends_and_order() {
        let series = run_panel(&tiny_spec(), Panel::RoutingCost, 4);
        let labels: Vec<&str> = series.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "R-BMA (b: 2)",
                "R-BMA (b: 4)",
                "BMA (b: 2)",
                "BMA (b: 4)",
                "Oblivious"
            ]
        );
        // Oblivious is the upper envelope at the final checkpoint.
        let last = series[0].x.len() - 1;
        let oblivious = series.last().expect("series").y_mean[last];
        for s in &series[..series.len() - 1] {
            assert!(
                s.y_mean[last] <= oblivious,
                "{} ({}) should not exceed oblivious ({oblivious})",
                s.label,
                s.y_mean[last]
            );
        }
    }

    #[test]
    fn larger_b_does_not_hurt_rbma() {
        let series = run_panel(&tiny_spec(), Panel::RoutingCost, 4);
        let last = series[0].x.len() - 1;
        let rbma_b2 = series[0].y_mean[last];
        let rbma_b4 = series[1].y_mean[last];
        assert!(
            rbma_b4 <= rbma_b2 * 1.02,
            "more switches should not increase routing cost: b2={rbma_b2} b4={rbma_b4}"
        );
    }

    #[test]
    fn panel_c_includes_so_bma() {
        let series = run_panel(&tiny_spec(), Panel::BestOf, 4);
        assert_eq!(series.len(), 3);
        assert!(series[2].label.starts_with("SO-BMA"));
        // SO-BMA routing cost is monotone in the prefix.
        assert!(series[2].y_mean.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn markdown_and_csv_render() {
        let series = vec![AveragedSeries {
            label: "A".into(),
            x: vec![10, 20],
            y_mean: vec![1.0, 2.0],
            y_std: vec![0.0, 0.1],
        }];
        let md = series_to_markdown("t", &series);
        assert!(md.contains("| 10 | 1.0000 |"));
        let csv = series_to_csv(&series);
        assert!(csv.contains("A,20,2,0.1"));
    }

    #[test]
    fn paper_figures_well_formed() {
        let figs = FigureSpec::paper_figures();
        assert_eq!(figs.len(), 4);
        assert!(FigureSpec::by_id("fig4").is_some());
        assert!(FigureSpec::by_id("fig9").is_none());
        let f4 = FigureSpec::by_id("fig4").expect("fig4 exists");
        assert_eq!(f4.racks, 50);
        assert_eq!(f4.bs, vec![3, 6, 9]);
        let scaled = f4.scaled(100);
        assert_eq!(scaled.total_requests, 17_500);
    }

    #[test]
    fn scaled_by_multiplies_requests() {
        let f1 = FigureSpec::by_id("fig1").expect("fig1 exists");
        assert_eq!(f1.scaled_by(2.0).total_requests, 700_000);
        assert_eq!(f1.scaled_by(0.1).total_requests, 35_000);
        // Never below one request per checkpoint.
        assert_eq!(f1.scaled_by(1e-9).total_requests, f1.num_checkpoints);
    }

    #[test]
    fn trace_spec_matches_eager_generator() {
        // Independent cross-check: the spec-streamed figure workload must
        // equal the eager generator called directly (spec.trace() itself is
        // defined via trace_spec, so comparing those two would be vacuous).
        let spec = tiny_spec();
        for rep in 0..2 {
            let streamed = spec.trace_spec(rep).as_trace().into_owned();
            let eager = dcn_traces::facebook_cluster_trace(
                dcn_traces::FacebookCluster::Database,
                spec.racks,
                spec.total_requests,
                derive_seed(0xF16, rep),
            );
            assert_eq!(eager.requests, streamed.requests);
            assert_eq!(eager.name, streamed.name);
        }
    }

    #[test]
    fn scaling_sweep_runs_streamed() {
        let corpus = dcn_adversary::committed_entries().len();
        assert!(corpus >= 3, "committed corpus should seed the panel");
        let (t, specials_share) = scaling_sweep(&[2_000, 4_000], 1, ShardSpec::full(), 2);
        assert_eq!(t.rows.len(), 2 + corpus);
        assert_eq!(t.columns.len(), 13);
        // The footer share is a real measurement when telemetry is
        // compiled in (the standard point sits near 30% specials; the
        // corpus rows pull the mix around, so just bound it).
        #[cfg(not(dcn_telemetry_off))]
        {
            let share = specials_share.expect("telemetry compiled in");
            assert!(share > 0.0 && share < 1.0, "share {share}");
        }
        #[cfg(dcn_telemetry_off)]
        assert!(specials_share.is_none());
        for (label, v) in &t.rows {
            // Online totals are bounded by the oblivious upper envelope plus
            // reconfiguration spend; all must be positive.
            assert!(v[0] > 0.0 && v[1] > 0.0 && v[2] > 0.0, "{label}: {v:?}");
            // Sorted/unsorted/per-request/sharded and flat/btree throughputs
            // and their ratios are real measurements (full report equality is
            // asserted across all four serve paths inside the sweep).
            assert!(v[3] > 0.0 && v[5] > 0.0 && v[7] > 0.0, "{label}: {v:?}");
            assert!(v[6].is_finite() && v[6] > 0.0, "{label}: {v:?}");
            assert!(v[8].is_finite() && v[8] > 0.0, "{label}: {v:?}");
            assert!(v[9] > 0.0 && v[11] > 0.0, "{label}: {v:?}");
            assert!(v[10].is_finite() && v[10] > 0.0, "{label}: {v:?}");
            // The BMA intra column is a real measurement too (full report
            // equality vs the fused loop is asserted inside the sweep).
            assert!(v[12] > 0.0, "{label}: {v:?}");
        }
        // Twice the requests ⇒ roughly twice the oblivious routing cost.
        let ratio = t.rows[1].1[2] / t.rows[0].1[2];
        assert!((1.5..=2.5).contains(&ratio), "ratio {ratio}");
        // The worst-case panel rows follow the length rows, in corpus
        // file-name order.
        for (label, _) in &t.rows[2..] {
            assert!(label.starts_with("worst-case "), "{label}");
        }
    }

    #[test]
    fn worst_case_panel_rows_are_replay_gated() {
        let corpus = dcn_adversary::committed_entries().len();
        let t = worst_case_panel();
        assert_eq!(t.rows.len(), corpus);
        assert_eq!(t.columns.len(), 4);
        for (label, v) in &t.rows {
            assert!(label.starts_with("worst-case "), "{label}");
            // Replay-gated totals plus the pinned adversarial ratio
            // (every committed nemesis beats the SO-BMA baseline).
            assert!(v[0] > 0.0 && v[1] > 0.0 && v[2] > 0.0, "{label}: {v:?}");
            assert!(v[3] > 1.0, "{label}: {v:?}");
        }
    }

    #[test]
    fn scaling_sweep_shards_partition_the_rows() {
        // Sharded invocations compute exactly their owned rows (lengths and
        // corpus panel alike, by continued original index) with the original
        // per-row seeds: the union of the cost columns equals the unsharded
        // run's (timing columns are wall-clock and excluded).
        let lens = [1_500usize, 2_500, 3_500];
        let full = scaling_sweep(&lens, 1, ShardSpec::full(), 2).0;
        let a = scaling_sweep(&lens, 1, ShardSpec::new(0, 2), 2).0;
        let b = scaling_sweep(&lens, 1, ShardSpec::new(1, 2), 2).0;
        let total = full.rows.len();
        assert_eq!(a.rows.len(), total.div_ceil(2));
        assert_eq!(b.rows.len(), total / 2);
        assert_eq!(a.title, full.title, "titles must merge byte-identically");
        // Round-robin by original index: shard 0 owns even rows, shard 1 odd.
        let mut merged = Vec::new();
        let (mut ai, mut bi) = (a.rows.iter(), b.rows.iter());
        for i in 0..total {
            merged.push(if i % 2 == 0 {
                ai.next().expect("shard 0 row")
            } else {
                bi.next().expect("shard 1 row")
            });
        }
        for (got, want) in merged.iter().zip(&full.rows) {
            assert_eq!(got.0, want.0);
            for c in 0..3 {
                assert_eq!(got.1[c], want.1[c], "cost column {c} of row {}", got.0);
            }
        }
    }

    #[test]
    fn sweep_scaling_reports_executor_rows() {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let t = sweep_scaling(0.004, ShardSpec::full());
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.columns.len(), 5);
        for (label, v) in &t.rows {
            assert!(v[0] > 0.0, "{label}: elapsed must be positive");
            assert!(v[1] > 0.0, "{label}: throughput must be positive");
            assert!(v[3] >= 1.0, "{label}: {v:?}");
            if cores == 1 {
                // Single-core hosts report n/a, not a noise-driven ≈1.0×.
                assert!(v[2].is_nan() && v[4].is_nan(), "{label}: {v:?}");
            } else {
                assert!(v[2] > 0.0 && v[4] > 0.0, "{label}: {v:?}");
            }
        }
        if cores == 1 {
            assert!(t.title.contains("1 core: speedup n/a"), "{}", t.title);
            assert!(t.to_markdown().contains(" n/a |"));
        }
        // Row sharding composes like every other table target.
        let first = sweep_scaling(0.004, ShardSpec::new(0, 4));
        assert_eq!(first.rows.len(), 1);
        assert_eq!(first.rows[0].0, "1 workers");
    }
}

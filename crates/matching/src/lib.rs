//! # dcn-matching
//!
//! The **matching substrate**: data structures and offline algorithms for
//! (b-)matchings between racks.
//!
//! * [`bmatching`] — [`BMatching`], the dynamic degree-capped edge set every
//!   online algorithm maintains (`M ⊆ V²` with `deg_M(v) ≤ b`, §1.1).
//! * [`blossom`] — exact maximum-weight matching (Edmonds' blossom
//!   algorithm, Galil \[31\], in the O(n³) formulation popularized by van
//!   Rantwijk's `mwmatching` — the implementation behind NetworkX's
//!   `max_weight_matching` that the paper's SO-BMA baseline calls).
//! * [`greedy`] — greedy heavy matchings (½-approximation) and greedy
//!   b-matchings, in the spirit of Hanauer et al. \[40\].
//! * [`repeated`] — maximum-weight *b*-matching as the union of `b` rounds
//!   of exact matching on the residual graph: exactly what `b` optical
//!   circuit switches realize physically (each switch carries one matching).
//! * [`coloring`] — Misra–Gries edge coloring (≤ Δ+1 colors), which maps a
//!   b-matching onto concrete optical switches.
//! * [`recency`] — per-endpoint LRU recency over a [`BMatching`]:
//!   [`recency::LruBMatching`], a flat intrusive LRU threaded through the
//!   matching's fixed-stride adjacency (O(1) touch/evict, BMA's hot path),
//!   plus the stamp/B-tree reference oracle it is equivalence-tested
//!   against.
//! * [`brute`] — exponential-time exact optima for small instances, used as
//!   ground truth by tests.

pub mod blossom;
pub mod bmatching;
pub mod brute;
pub mod coloring;
pub mod greedy;
pub mod recency;
pub mod repeated;

pub use blossom::max_weight_matching;
pub use bmatching::BMatching;
pub use coloring::edge_coloring;
pub use greedy::{greedy_b_matching, greedy_matching};
pub use recency::{BTreeRecencyMatching, LruBMatching, RecencyMatching};
pub use repeated::repeated_mwm_b_matching;

/// A weighted candidate edge between racks `u` and `v` (`u != v`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightedEdge {
    /// First endpoint.
    pub u: u32,
    /// Second endpoint.
    pub v: u32,
    /// Weight (for SO-BMA: accumulated routing-cost savings of the pair).
    pub weight: i64,
}

impl WeightedEdge {
    /// Convenience constructor.
    pub fn new(u: u32, v: u32, weight: i64) -> Self {
        assert!(u != v, "weighted edge endpoints must differ");
        Self { u, v, weight }
    }
}

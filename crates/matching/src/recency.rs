//! Per-endpoint **recency indexes** over a [`BMatching`] — the substrate of
//! deterministic LRU eviction (BMA's rent-or-buy baseline evicts the
//! least-recently-used incident edge at a full endpoint).
//!
//! Two implementations with one contract ([`RecencyMatching`]):
//!
//! * [`LruBMatching`] — the production structure: a **flat intrusive LRU**.
//!   A slab of list nodes with `prev`/`next` slot indices is threaded
//!   per-endpoint through the *same fixed-stride adjacency layout*
//!   [`BMatching`] already owns (edge at position `i` of rack `v`'s block
//!   occupies slot `v·b + i`), so finding an edge's list node is the same
//!   bounded block scan that membership already pays — no hashing, no
//!   allocation, no tree. A hit is two O(1) list splices; the eviction
//!   victim is a head read.
//! * [`BTreeRecencyMatching`] — the historical structure (one
//!   `BTreeMap<stamp, Pair>` per rack plus a `stamp → pair` map), kept as
//!   the **reference oracle**: the equivalence proptests replay both side
//!   by side and require identical victims, and `micro_batch`'s
//!   `bma/recency_upkeep` point measures the flattening win against it.
//!
//! Victim equivalence argument: the B-tree orders a rack's incident edges
//! by their last-touch stamp, drawn from a strictly increasing global
//! clock; the intrusive list orders them by last-touch *sequence* (touch
//! moves a node to the MRU tail, insertion enters at the MRU tail). Both
//! orders are the order of last touches, so the minimum-stamp edge and the
//! LRU head coincide — decision for decision. The list needs no stamps at
//! all, which also removes the B-tree's (theoretical) clock-wraparound
//! hazard: [`BTreeRecency`] aborts if its `u64` stamp clock would overflow,
//! while [`LruBMatching`] has no clock to overflow.
//!
//! Adoption survey (rest of the workspace): `periodic.rs` keeps a demand
//! *count* window (no recency ordering) and `predictive.rs` evicts by
//! predicted next use over unmarked entries (oracle order, not recency), so
//! neither gains from this slab; R-BMA's marking caches sample uniformly
//! ([`dcn_util::IndexedSet`] / `DenseMarking`), which is already O(1). BMA
//! is the only recency consumer, and it rides [`LruBMatching`].

use crate::BMatching;
use dcn_topology::{NodeId, Pair};
use dcn_util::FxHashMap;
use std::collections::BTreeMap;

/// Sentinel for "no slot" in the intrusive lists.
const NIL: u32 = u32::MAX;

/// A degree-capped matching with per-endpoint LRU recency over its incident
/// edges. The one contract BMA needs: membership-with-touch, MRU insertion,
/// removal, and the per-endpoint LRU victim.
///
/// `Sync` is a supertrait because BMA's bucketed serve pass shares the
/// index immutably with its (possibly sharded) chunk-preprocessing scan;
/// both implementations here are plain owned data and qualify. Mutation
/// stays single-threaded — and the bucketed pass *defers* hit touches,
/// splicing each pair once per flush interval at its last-occurrence
/// position instead of once per hit, which is observation-equivalent
/// because recency is only read at buy/eviction points (immediately after
/// a flush) and only the per-endpoint last-touch *order* decides victims.
pub trait RecencyMatching: Sync {
    /// Empty structure over `n` racks with degree cap `b`.
    fn new(n: usize, b: usize) -> Self;

    /// The underlying matching.
    fn matching(&self) -> &BMatching;

    /// If `pair` is a matching edge, refresh its recency at both endpoints
    /// and return `true`; otherwise return `false` and change nothing.
    fn touch_hit(&mut self, pair: Pair) -> bool;

    /// Inserts `pair` as the most-recently-used edge at both endpoints.
    /// Panics if present or over the cap (callers make room first).
    fn insert_mru(&mut self, pair: Pair);

    /// Removes `pair` and its recency state; returns whether it was present.
    fn remove(&mut self, pair: Pair) -> bool;

    /// The least-recently-used matching edge incident to `v`, if any — the
    /// deterministic eviction victim.
    fn lru_edge(&self, v: NodeId) -> Option<Pair>;

    /// `v`'s incident edges in recency order (LRU first). O(degree); for
    /// tests and diagnostics, not the hot path.
    fn recency_order(&self, v: NodeId) -> Vec<Pair>;
}

/// Flat intrusive LRU over [`BMatching`]'s fixed-stride adjacency.
///
/// Layout: edge at position `i` of rack `v`'s adjacency block owns list
/// slot `v·b + i` in the `prev`/`next` slabs; `head[v]`/`tail[v]` bound
/// rack `v`'s list (head = LRU victim, tail = MRU). [`BMatching`]'s
/// swap-remove (last block entry fills the hole) is mirrored by relabeling
/// the moved edge's list node, so slots always track block positions.
///
/// ```
/// use dcn_matching::recency::{LruBMatching, RecencyMatching};
/// use dcn_topology::Pair;
///
/// let mut m = LruBMatching::new(4, 2);
/// m.insert_mru(Pair::new(0, 1));
/// m.insert_mru(Pair::new(0, 2));
/// assert!(m.touch_hit(Pair::new(0, 1))); // {0,1} becomes MRU at rack 0
/// assert_eq!(m.lru_edge(0), Some(Pair::new(0, 2)));
/// assert!(!m.touch_hit(Pair::new(0, 3)), "not a matching edge");
/// ```
#[derive(Clone, Debug)]
pub struct LruBMatching {
    matching: BMatching,
    /// Intrusive list slabs, indexed by adjacency slot `v·cap + position`.
    prev: Vec<u32>,
    next: Vec<u32>,
    /// Oldest (LRU) slot per rack; `NIL` when the rack has no edges.
    head: Vec<u32>,
    /// Newest (MRU) slot per rack.
    tail: Vec<u32>,
}

impl LruBMatching {
    #[inline]
    fn slot(&self, v: NodeId, pos: usize) -> u32 {
        (v as usize * self.matching.cap() + pos) as u32
    }

    /// Unlinks `slot` from rack `v`'s list (must be linked).
    #[inline]
    fn unlink(&mut self, v: NodeId, slot: u32) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p == NIL {
            self.head[v as usize] = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail[v as usize] = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    /// Links `slot` at rack `v`'s MRU end.
    #[inline]
    fn push_mru(&mut self, v: NodeId, slot: u32) {
        let t = self.tail[v as usize];
        self.prev[slot as usize] = t;
        self.next[slot as usize] = NIL;
        if t == NIL {
            self.head[v as usize] = slot;
        } else {
            self.next[t as usize] = slot;
        }
        self.tail[v as usize] = slot;
    }

    /// Moves the list node at `from` to `to` (the swap-remove mirror):
    /// neighbors and head/tail that pointed at `from` now point at `to`.
    #[inline]
    fn relabel(&mut self, v: NodeId, from: u32, to: u32) {
        let (p, n) = (self.prev[from as usize], self.next[from as usize]);
        self.prev[to as usize] = p;
        self.next[to as usize] = n;
        if p == NIL {
            self.head[v as usize] = to;
        } else {
            self.next[p as usize] = to;
        }
        if n == NIL {
            self.tail[v as usize] = to;
        } else {
            self.prev[n as usize] = to;
        }
    }

    /// Exhaustive consistency check (tests/debug): list membership equals
    /// block membership, orders are walkable from both ends, and the
    /// underlying matching invariant holds.
    pub fn assert_valid(&self) {
        self.matching.assert_valid();
        for v in 0..self.matching.num_racks() as NodeId {
            let d = self.matching.degree(v);
            let base = v as usize * self.matching.cap();
            let mut seen = vec![false; d];
            let mut slot = self.head[v as usize];
            let mut prev = NIL;
            let mut walked = 0usize;
            while slot != NIL {
                let pos = slot as usize - base;
                assert!(pos < d, "slot {slot} outside the valid prefix at {v}");
                assert!(!seen[pos], "slot {slot} linked twice at {v}");
                seen[pos] = true;
                assert_eq!(self.prev[slot as usize], prev, "broken prev at {v}");
                prev = slot;
                slot = self.next[slot as usize];
                walked += 1;
                assert!(walked <= d, "cycle in recency list at {v}");
            }
            assert_eq!(walked, d, "list length != degree at {v}");
            assert_eq!(self.tail[v as usize], prev, "tail out of sync at {v}");
        }
    }
}

impl RecencyMatching for LruBMatching {
    fn new(n: usize, b: usize) -> Self {
        // Slot ids (and the NIL sentinel) live in u32: guard the capacity
        // the same way the BTree reference guards its stamp clock, instead
        // of silently aliasing list nodes past 2^32 slots.
        assert!(
            (n as u128) * (b as u128) < NIL as u128,
            "n*b = {n}*{b} exceeds the u32 slot space of the intrusive LRU"
        );
        Self {
            matching: BMatching::new(n, b),
            prev: vec![NIL; n * b],
            next: vec![NIL; n * b],
            head: vec![NIL; n],
            tail: vec![NIL; n],
        }
    }

    #[inline]
    fn matching(&self) -> &BMatching {
        &self.matching
    }

    #[inline]
    fn touch_hit(&mut self, pair: Pair) -> bool {
        let (u, w) = pair.endpoints();
        // The membership scan *is* the list-node lookup: position in the
        // block addresses the intrusive slot directly.
        let Some(pu) = self.matching.position(u, pair) else {
            return false;
        };
        let pw = self
            .matching
            .position(w, pair)
            .expect("adjacency blocks out of sync");
        for (v, pos) in [(u, pu), (w, pw)] {
            let slot = self.slot(v, pos);
            if self.tail[v as usize] != slot {
                self.unlink(v, slot);
                self.push_mru(v, slot);
            }
        }
        true
    }

    fn insert_mru(&mut self, pair: Pair) {
        let (u, w) = pair.endpoints();
        // BMatching appends at the degree index; record both before insert.
        let (pu, pw) = (self.matching.degree(u), self.matching.degree(w));
        self.matching.insert(pair);
        let (su, sw) = (self.slot(u, pu), self.slot(w, pw));
        self.push_mru(u, su);
        self.push_mru(w, sw);
    }

    fn remove(&mut self, pair: Pair) -> bool {
        let (u, w) = pair.endpoints();
        let Some(pu) = self.matching.position(u, pair) else {
            return false;
        };
        let pw = self
            .matching
            .position(w, pair)
            .expect("adjacency blocks out of sync");
        for (v, pos) in [(u, pu), (w, pw)] {
            let last = self.matching.degree(v) - 1;
            self.unlink(v, self.slot(v, pos));
            if pos != last {
                // Mirror the swap-remove: the block's last edge moves into
                // the hole, so its list node moves to the hole's slot.
                self.relabel(v, self.slot(v, last), self.slot(v, pos));
            }
        }
        let removed = self.matching.remove(pair);
        debug_assert!(removed, "position() found the pair, remove() must too");
        true
    }

    #[inline]
    fn lru_edge(&self, v: NodeId) -> Option<Pair> {
        let slot = self.head[v as usize];
        (slot != NIL).then(|| {
            let pos = slot as usize - v as usize * self.matching.cap();
            self.matching.incident_edges(v)[pos]
        })
    }

    fn recency_order(&self, v: NodeId) -> Vec<Pair> {
        let base = v as usize * self.matching.cap();
        let mut out = Vec::with_capacity(self.matching.degree(v));
        let mut slot = self.head[v as usize];
        while slot != NIL {
            out.push(self.matching.incident_edges(v)[slot as usize - base]);
            slot = self.next[slot as usize];
        }
        out
    }
}

/// The historical recency index: one stamp-ordered `BTreeMap` per rack.
///
/// Kept as the reference oracle for [`LruBMatching`] (equivalence proptests
/// and the `bma/recency_upkeep` before/after bench point) — see the module
/// docs for the victim-equivalence argument.
#[derive(Clone, Debug, Default)]
pub struct BTreeRecency {
    /// Last-use stamp of each matching edge (`FxHashMap`, exactly as the
    /// pre-flattening BMA kept it — the oracle must not be handicapped,
    /// or the published flat-vs-btree speedups would overstate the win).
    stamp_of: FxHashMap<Pair, u64>,
    /// Per-rack recency index; the first entry is the LRU victim.
    recency: Vec<BTreeMap<u64, Pair>>,
    clock: u64,
}

impl BTreeRecency {
    /// Empty index over `n` racks.
    pub fn new(n: usize) -> Self {
        Self::with_start_clock(n, 0)
    }

    /// Empty index whose stamp clock starts at `clock` — lets tests probe
    /// behaviour at very large stamps, where the stamp-based design would
    /// wrap (and corrupt its ordering) while the intrusive list, having no
    /// stamps, cannot.
    pub fn with_start_clock(n: usize, clock: u64) -> Self {
        Self {
            stamp_of: FxHashMap::default(),
            recency: vec![BTreeMap::new(); n],
            clock,
        }
    }

    /// Refreshes the recency of `pair` at both endpoints (the caller
    /// guarantees `pair` is, or is becoming, a matching edge).
    pub fn touch(&mut self, pair: Pair) {
        self.clock = self
            .clock
            .checked_add(1)
            .expect("BTreeRecency stamp clock overflow: stamps would wrap and reorder");
        if let Some(old) = self.stamp_of.insert(pair, self.clock) {
            self.recency[pair.lo() as usize].remove(&old);
            self.recency[pair.hi() as usize].remove(&old);
        }
        self.recency[pair.lo() as usize].insert(self.clock, pair);
        self.recency[pair.hi() as usize].insert(self.clock, pair);
    }

    /// Drops `pair`'s recency state; returns whether it was tracked.
    pub fn remove(&mut self, pair: Pair) -> bool {
        match self.stamp_of.remove(&pair) {
            None => false,
            Some(stamp) => {
                self.recency[pair.lo() as usize].remove(&stamp);
                self.recency[pair.hi() as usize].remove(&stamp);
                true
            }
        }
    }

    /// The minimum-stamp (least recently used) edge at `v`.
    pub fn lru_edge(&self, v: NodeId) -> Option<Pair> {
        self.recency[v as usize].values().next().copied()
    }

    /// `v`'s tracked edges in stamp order (LRU first).
    pub fn order(&self, v: NodeId) -> Vec<Pair> {
        self.recency[v as usize].values().copied().collect()
    }
}

/// [`BTreeRecency`] paired with the matching it indexes — the reference
/// implementation of [`RecencyMatching`], structured exactly like the
/// pre-flattening BMA fields.
#[derive(Clone, Debug)]
pub struct BTreeRecencyMatching {
    matching: BMatching,
    recency: BTreeRecency,
}

impl BTreeRecencyMatching {
    /// Reference structure whose stamp clock starts at `clock` (see
    /// [`BTreeRecency::with_start_clock`]).
    pub fn with_start_clock(n: usize, b: usize, clock: u64) -> Self {
        Self {
            matching: BMatching::new(n, b),
            recency: BTreeRecency::with_start_clock(n, clock),
        }
    }
}

impl RecencyMatching for BTreeRecencyMatching {
    fn new(n: usize, b: usize) -> Self {
        Self::with_start_clock(n, b, 0)
    }

    fn matching(&self) -> &BMatching {
        &self.matching
    }

    fn touch_hit(&mut self, pair: Pair) -> bool {
        if !self.matching.contains(pair) {
            return false;
        }
        self.recency.touch(pair);
        true
    }

    fn insert_mru(&mut self, pair: Pair) {
        self.matching.insert(pair);
        self.recency.touch(pair);
    }

    fn remove(&mut self, pair: Pair) -> bool {
        if !self.matching.remove(pair) {
            return false;
        }
        let tracked = self.recency.remove(pair);
        debug_assert!(tracked, "matched edge missing from recency index");
        true
    }

    fn lru_edge(&self, v: NodeId) -> Option<Pair> {
        self.recency.lru_edge(v)
    }

    fn recency_order(&self, v: NodeId) -> Vec<Pair> {
        self.recency.order(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(a, b)
    }

    #[test]
    fn lru_victim_is_oldest_touch() {
        let mut m = LruBMatching::new(6, 3);
        m.insert_mru(p(0, 1));
        m.insert_mru(p(0, 2));
        m.insert_mru(p(0, 3));
        assert_eq!(m.lru_edge(0), Some(p(0, 1)));
        assert!(m.touch_hit(p(0, 1)));
        assert_eq!(m.lru_edge(0), Some(p(0, 2)));
        assert_eq!(m.recency_order(0), vec![p(0, 2), p(0, 3), p(0, 1)]);
        m.assert_valid();
    }

    #[test]
    fn touch_misses_leave_state_unchanged() {
        let mut m = LruBMatching::new(4, 2);
        m.insert_mru(p(0, 1));
        let before = m.recency_order(0);
        assert!(!m.touch_hit(p(0, 2)));
        assert_eq!(m.recency_order(0), before);
        assert!(!m.remove(p(0, 2)));
        m.assert_valid();
    }

    #[test]
    fn remove_mirrors_swap_remove_relabeling() {
        // Removing a middle edge makes BMatching move its last block entry
        // into the hole; the list node must follow, preserving order.
        let mut m = LruBMatching::new(6, 4);
        for v in [1u32, 2, 3, 4] {
            m.insert_mru(p(0, v));
        }
        assert!(m.remove(p(0, 2)));
        // Recency order drops {0,2} but otherwise keeps touch order.
        assert_eq!(m.recency_order(0), vec![p(0, 1), p(0, 3), p(0, 4)]);
        assert_eq!(m.lru_edge(0), Some(p(0, 1)));
        m.assert_valid();
        // The other endpoints' single-entry lists survive too.
        assert_eq!(m.recency_order(3), vec![p(0, 3)]);
    }

    #[test]
    fn empty_rack_has_no_victim() {
        let m = LruBMatching::new(3, 2);
        assert_eq!(m.lru_edge(1), None);
        assert!(m.recency_order(1).is_empty());
    }

    #[test]
    fn btree_reference_matches_flat_on_a_scripted_sequence() {
        let mut flat = LruBMatching::new(8, 2);
        let mut tree = BTreeRecencyMatching::new(8, 2);
        let script = [p(0, 1), p(0, 2), p(1, 2), p(3, 4), p(0, 1), p(1, 2)];
        for e in script {
            if !flat.touch_hit(e) {
                assert!(!tree.touch_hit(e));
                if flat.matching().can_insert(e) {
                    flat.insert_mru(e);
                    tree.insert_mru(e);
                }
            } else {
                assert!(tree.touch_hit(e));
            }
            for v in 0..8 {
                assert_eq!(flat.recency_order(v), tree.recency_order(v));
                assert_eq!(flat.lru_edge(v), tree.lru_edge(v));
            }
        }
        flat.assert_valid();
    }

    #[test]
    fn large_start_clock_does_not_perturb_the_reference() {
        // Stamps near the top of the u64 range order exactly like small
        // ones (no wrap occurs); the flat structure has no stamps at all.
        let mut tree = BTreeRecencyMatching::with_start_clock(4, 2, u64::MAX - 16);
        let mut flat = LruBMatching::new(4, 2);
        for e in [p(0, 1), p(0, 2), p(0, 1), p(2, 3)] {
            if !tree.touch_hit(e) {
                tree.insert_mru(e);
                flat.insert_mru(e);
            } else {
                assert!(flat.touch_hit(e));
            }
        }
        for v in 0..4 {
            assert_eq!(tree.recency_order(v), flat.recency_order(v));
        }
    }

    #[test]
    #[should_panic(expected = "stamp clock overflow")]
    fn btree_clock_overflow_is_detected_not_silent() {
        let mut tree = BTreeRecencyMatching::with_start_clock(4, 2, u64::MAX - 1);
        tree.insert_mru(p(0, 1)); // stamp u64::MAX
        tree.touch_hit(p(0, 1)); // would wrap to 0 and reorder: abort
    }

    #[test]
    fn churn_keeps_lists_and_blocks_in_sync() {
        let n = 10u32;
        let mut m = LruBMatching::new(n as usize, 3);
        for i in 0..4000u32 {
            let a = i % n;
            let b = (a + 1 + i.wrapping_mul(2654435761) % (n - 1)) % n;
            if a == b {
                continue;
            }
            let e = p(a, b);
            if m.touch_hit(e) {
                if i % 7 == 0 {
                    m.remove(e);
                }
            } else if m.matching().can_insert(e) {
                m.insert_mru(e);
            } else if let Some(victim) = m.lru_edge(e.lo()) {
                m.remove(victim);
            }
            if i % 97 == 0 {
                m.assert_valid();
            }
        }
        m.assert_valid();
    }
}

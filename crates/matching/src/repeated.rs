//! Maximum-weight **b-matching** as the union of `b` exact matchings.
//!
//! The paper's SO-BMA baseline uses NetworkX's 1-matching routine; a degree-b
//! schedule for `b` optical circuit switches is then obtained by running the
//! matcher `b` times, each round on the demand graph minus already-selected
//! edges. The union of `b` matchings trivially satisfies the degree bound and
//! — crucially — is *physically realizable*: round `i`'s matching is switch
//! `i`'s configuration, no edge coloring needed.
//!
//! This is a heuristic for the true max-weight b-matching (which would
//! require a b-matching LP/flow formulation), but round 1 alone already
//! secures at least `OPT_b / b`, and on skewed datacenter demand it is near
//! optimal; tests quantify this against brute force.

use crate::blossom::max_weight_matching_pairs;
use crate::WeightedEdge;
use dcn_topology::Pair;
use dcn_util::FxHashSet;

/// Runs `b` rounds of exact maximum-weight matching on the residual edge
/// set; returns one `Vec<Pair>` per round (the per-switch matchings).
/// The union is a valid b-matching.
pub fn repeated_mwm_rounds(n: usize, edges: &[WeightedEdge], b: usize) -> Vec<Vec<Pair>> {
    assert!(b >= 1);
    let mut taken: FxHashSet<Pair> = FxHashSet::default();
    let mut rounds = Vec::with_capacity(b);
    for _ in 0..b {
        let residual: Vec<WeightedEdge> = edges
            .iter()
            .filter(|e| e.weight > 0 && !taken.contains(&Pair::new(e.u, e.v)))
            .copied()
            .collect();
        if residual.is_empty() {
            rounds.push(Vec::new());
            continue;
        }
        let matched = max_weight_matching_pairs(n, &residual);
        for &p in &matched {
            taken.insert(p);
        }
        rounds.push(matched);
    }
    rounds
}

/// The union of [`repeated_mwm_rounds`]: a heavy b-matching.
pub fn repeated_mwm_b_matching(n: usize, edges: &[WeightedEdge], b: usize) -> Vec<Pair> {
    repeated_mwm_rounds(n, edges, b)
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmatching::is_valid_b_matching;
    use crate::brute::brute_force_max_weight_b_matching;
    use crate::greedy::matching_weight;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn we(u: u32, v: u32, w: i64) -> WeightedEdge {
        WeightedEdge::new(u, v, w)
    }

    #[test]
    fn b_one_equals_single_mwm() {
        let edges = [we(0, 1, 3), we(1, 2, 4), we(2, 3, 3)];
        let m = repeated_mwm_b_matching(4, &edges, 1);
        assert_eq!(matching_weight(&m, &edges), 6);
    }

    #[test]
    fn rounds_are_disjoint_matchings() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 10;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.random_bool(0.5) {
                    edges.push(we(u, v, rng.random_range(1..30)));
                }
            }
        }
        let rounds = repeated_mwm_rounds(n, &edges, 3);
        assert_eq!(rounds.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for round in &rounds {
            assert!(
                is_valid_b_matching(round, 1),
                "each round must be a matching"
            );
            for &p in round {
                assert!(seen.insert(p), "edge {p} reused across rounds");
            }
        }
        let union: Vec<Pair> = rounds.into_iter().flatten().collect();
        assert!(is_valid_b_matching(&union, 3));
    }

    #[test]
    fn close_to_brute_force_b_matching() {
        let mut rng = SmallRng::seed_from_u64(77);
        for trial in 0..20 {
            let n = 6;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.random_bool(0.7) {
                        edges.push(we(u, v, rng.random_range(1..30)));
                    }
                }
            }
            if edges.len() > 24 {
                edges.truncate(24);
            }
            for b in 1..=3usize {
                let got = matching_weight(&repeated_mwm_b_matching(n, &edges, b), &edges);
                let (opt, _) = brute_force_max_weight_b_matching(n, &edges, b);
                assert!(got <= opt, "heuristic above optimum?!");
                // Round 1 alone is a max-weight matching >= opt/b.
                assert!(
                    (b as i64) * got >= opt,
                    "trial {trial} b={b}: {got} < opt/b with opt {opt}"
                );
            }
        }
    }

    #[test]
    fn weight_monotone_in_b() {
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 12;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.random_bool(0.4) {
                    edges.push(we(u, v, rng.random_range(1..50)));
                }
            }
        }
        let mut last = 0;
        for b in 1..=4 {
            let w = matching_weight(&repeated_mwm_b_matching(n, &edges, b), &edges);
            assert!(w >= last, "weight must not decrease as b grows");
            last = w;
        }
    }

    #[test]
    fn exhausted_graph_yields_empty_rounds() {
        let edges = [we(0, 1, 5)];
        let rounds = repeated_mwm_rounds(2, &edges, 3);
        assert_eq!(rounds[0], vec![Pair::new(0, 1)]);
        assert!(rounds[1].is_empty() && rounds[2].is_empty());
    }
}

//! Misra–Gries edge coloring: colors the edges of a simple graph with at
//! most Δ+1 colors such that no two edges sharing an endpoint get the same
//! color.
//!
//! Application: a b-matching `M` (max degree `b`) must physically be carried
//! by `b` optical circuit switches, each realizing one matching. An edge
//! coloring of `M` with `c` colors is exactly a decomposition into `c`
//! matchings. Vizing's theorem guarantees Δ+1 colors suffice (and
//! Misra–Gries achieves this constructively); even-cycle/bipartite demand
//! often needs only Δ. The SO-BMA path sidesteps the question by
//! *constructing* its b-matching as b matchings, but online algorithms
//! produce arbitrary b-matchings, for which this module provides the
//! switch assignment.

use dcn_topology::{NodeId, Pair};
use dcn_util::FxHashMap;

/// State: `at[v][c]` = neighbor of `v` along the edge colored `c`, if any.
struct Palette {
    at: Vec<Vec<Option<NodeId>>>,
    color: FxHashMap<Pair, usize>,
}

impl Palette {
    fn new(n: usize, ncolors: usize) -> Self {
        Self {
            at: vec![vec![None; ncolors]; n],
            color: FxHashMap::default(),
        }
    }

    /// Smallest color free at `v`.
    fn free(&self, v: NodeId) -> usize {
        self.at[v as usize]
            .iter()
            .position(Option::is_none)
            .expect("Δ+1 palette always has a free color")
    }

    fn is_free(&self, v: NodeId, c: usize) -> bool {
        self.at[v as usize][c].is_none()
    }

    fn set(&mut self, u: NodeId, v: NodeId, c: usize) {
        debug_assert!(self.is_free(u, c) && self.is_free(v, c));
        self.at[u as usize][c] = Some(v);
        self.at[v as usize][c] = Some(u);
        self.color.insert(Pair::new(u, v), c);
    }

    fn unset(&mut self, u: NodeId, v: NodeId) -> usize {
        let c = self
            .color
            .remove(&Pair::new(u, v))
            .expect("edge was colored");
        self.at[u as usize][c] = None;
        self.at[v as usize][c] = None;
        c
    }
}

/// Colors `edges` (a simple graph over racks `0..n`) with at most Δ+1
/// colors; returns `colors[i]` = color of `edges[i]`, numbered from 0.
pub fn edge_coloring(n: usize, edges: &[Pair]) -> Vec<u32> {
    let mut degree = vec![0usize; n];
    for e in edges {
        degree[e.lo() as usize] += 1;
        degree[e.hi() as usize] += 1;
    }
    let delta = degree.iter().copied().max().unwrap_or(0);
    let ncolors = delta + 1;
    let mut pal = Palette::new(n, ncolors);

    for &edge in edges {
        let (u, v0) = edge.endpoints();
        // Build a maximal fan of u starting at v0: each next fan vertex x is
        // a neighbor of u whose edge color is free on the current last
        // vertex of the fan.
        let mut fan = vec![v0];
        'extend: loop {
            let last = *fan.last().expect("fan non-empty");
            for c in 0..ncolors {
                if pal.is_free(last, c) {
                    if let Some(x) = pal.at[u as usize][c] {
                        if !fan.contains(&x) {
                            fan.push(x);
                            continue 'extend;
                        }
                    }
                }
            }
            break;
        }
        let c = pal.free(u);
        let d = pal.free(*fan.last().expect("fan non-empty"));
        if c != d {
            // Invert the cd-path starting at u (edges alternately colored
            // d, c, d, ...). After inversion, d is free at u.
            let mut path = Vec::new();
            let mut cur = u;
            let mut want = d;
            loop {
                match pal.at[cur as usize][want] {
                    None => break,
                    Some(next) => {
                        path.push((cur, next));
                        cur = next;
                        want = if want == d { c } else { d };
                    }
                }
            }
            for &(x, y) in &path {
                pal.unset(x, y);
            }
            for (i, &(x, y)) in path.iter().enumerate() {
                // Edge i had color d if i even, c if odd; swap.
                let newc = if i % 2 == 0 { c } else { d };
                pal.set(x, y, newc);
            }
        }
        // Pick w: the first fan vertex on which d is free (exists by the
        // Misra-Gries invariant after the path inversion).
        let w_idx = fan
            .iter()
            .position(|&f| pal.is_free(f, d))
            .expect("Misra-Gries: some fan vertex has d free after inversion");
        // Rotate the fan prefix: edge {u, fan[i]} takes the color of
        // {u, fan[i+1]}; the fan property guarantees that color is free on
        // fan[i]. Edge {u, fan[w]} ends up uncolored and receives d.
        for i in 0..w_idx {
            let ci = pal.unset(u, fan[i + 1]);
            pal.set(u, fan[i], ci);
        }
        pal.set(u, fan[w_idx], d);
    }

    edges
        .iter()
        .map(|e| *pal.color.get(e).expect("all edges colored") as u32)
        .collect()
}

/// Validates a proper edge coloring; returns the number of colors used.
pub fn validate_coloring(edges: &[Pair], colors: &[u32]) -> Result<usize, String> {
    if edges.len() != colors.len() {
        return Err("length mismatch".into());
    }
    let mut seen: std::collections::HashSet<(NodeId, u32)> = std::collections::HashSet::new();
    for (e, &c) in edges.iter().zip(colors) {
        for v in [e.lo(), e.hi()] {
            if !seen.insert((v, c)) {
                return Err(format!("color {c} repeated at node {v}"));
            }
        }
    }
    Ok(colors
        .iter()
        .collect::<std::collections::HashSet<_>>()
        .len())
}

/// Decomposes a b-matching into per-switch matchings via edge coloring.
/// Returns `switches[s]` = edges assigned to switch `s`. The number of
/// switches used is at most Δ+1 ≤ b+1 (Vizing); for most demand patterns it
/// is Δ ≤ b.
pub fn assign_switches(n: usize, b_matching: &[Pair]) -> Vec<Vec<Pair>> {
    let colors = edge_coloring(n, b_matching);
    let nswitches = colors.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut switches = vec![Vec::new(); nswitches];
    for (e, c) in b_matching.iter().zip(&colors) {
        switches[*c as usize].push(*e);
    }
    switches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmatching::is_valid_b_matching;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(a, b)
    }

    #[test]
    fn single_edge() {
        let edges = [p(0, 1)];
        let colors = edge_coloring(2, &edges);
        assert!(validate_coloring(&edges, &colors).is_ok());
    }

    #[test]
    fn star_needs_degree_colors() {
        let edges = [p(0, 1), p(0, 2), p(0, 3), p(0, 4)];
        let colors = edge_coloring(5, &edges);
        let used = validate_coloring(&edges, &colors).expect("proper coloring");
        assert_eq!(used, 4, "star edges all share the hub");
    }

    #[test]
    fn triangle_needs_three() {
        let edges = [p(0, 1), p(1, 2), p(0, 2)];
        let colors = edge_coloring(3, &edges);
        let used = validate_coloring(&edges, &colors).expect("proper coloring");
        assert_eq!(used, 3, "odd cycle needs Δ+1 colors");
    }

    #[test]
    fn even_cycle_within_vizing() {
        let edges = [p(0, 1), p(1, 2), p(2, 3), p(3, 0)];
        let colors = edge_coloring(4, &edges);
        let used = validate_coloring(&edges, &colors).expect("proper coloring");
        assert!(used <= 3, "even cycle needs at most Δ+1 = 3 (usually 2)");
    }

    #[test]
    fn path_graph_two_colors() {
        let edges = [p(0, 1), p(1, 2), p(2, 3), p(3, 4)];
        let colors = edge_coloring(5, &edges);
        let used = validate_coloring(&edges, &colors).expect("proper coloring");
        assert!(used <= 3);
    }

    #[test]
    fn random_graphs_colored_within_vizing_bound() {
        let mut rng = SmallRng::seed_from_u64(31);
        for trial in 0..60 {
            let n = 6 + trial % 10;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.random_bool(0.35) {
                        edges.push(p(u, v));
                    }
                }
            }
            if edges.is_empty() {
                continue;
            }
            let mut degree = vec![0usize; n];
            for e in &edges {
                degree[e.lo() as usize] += 1;
                degree[e.hi() as usize] += 1;
            }
            let delta = degree.iter().copied().max().unwrap();
            let colors = edge_coloring(n, &edges);
            let used =
                validate_coloring(&edges, &colors).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            assert!(
                used <= delta + 1,
                "trial {trial}: used {used} > Δ+1 = {}",
                delta + 1
            );
        }
    }

    #[test]
    fn switch_assignment_decomposes_into_matchings() {
        let mut rng = SmallRng::seed_from_u64(8);
        let n = 14;
        let b = 3;
        let mut degree = vec![0usize; n];
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if degree[u as usize] < b && degree[v as usize] < b && rng.random_bool(0.5) {
                    degree[u as usize] += 1;
                    degree[v as usize] += 1;
                    edges.push(p(u, v));
                }
            }
        }
        let switches = assign_switches(n, &edges);
        assert!(switches.len() <= b + 1, "Vizing bound");
        let total: usize = switches.iter().map(Vec::len).sum();
        assert_eq!(total, edges.len());
        for sw in &switches {
            assert!(
                is_valid_b_matching(sw, 1),
                "each switch must carry a matching"
            );
        }
    }
}

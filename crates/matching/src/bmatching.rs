//! The dynamic b-matching `M` that online algorithms reconfigure.
//!
//! Invariant (§1.1): every node has at most `b` incident matching edges.
//! The structure is a **flat, index-addressed layout**: one degree counter
//! per node plus a fixed-stride adjacency array (node `v`'s incident edges
//! live in the contiguous block `v·b .. v·b + degree[v]`). Membership is a
//! linear scan of one node's block — at most `b` packed-`u64` compares over
//! a single cache line or two for paper-scale `b`, with no hashing and no
//! pointer chasing — and insert/remove are O(b) writes into the same block,
//! so the batched serve loops stay branch-light and allocation-free.
//!
//! Removal uses swap-remove within a node's block, so the per-node incident
//! *order evolution* (append on insert, swap-with-last on remove) is
//! exactly what the previous `IndexedSet`-backed layout produced — callers
//! that scan `incident_edges` for a victim (R-BMA's lazy prune) pick the
//! same victims as before the flattening.
//!
//! The surface covers both R-BMA's lazy-removal mode (callers pick which
//! incident edge to prune) and BMA's counter-driven evictions.

use dcn_topology::{NodeId, Pair};

/// Filler for adjacency slots beyond a node's degree; never read.
#[inline]
fn slot_filler() -> Pair {
    Pair::new(0, 1)
}

/// A degree-capped dynamic edge set over racks `0..n`.
///
/// ```
/// use dcn_matching::BMatching;
/// use dcn_topology::Pair;
///
/// let mut m = BMatching::new(4, 1); // 4 racks, one circuit each
/// assert!(m.try_insert(Pair::new(0, 1)));
/// assert!(!m.try_insert(Pair::new(1, 2)), "rack 1 is at capacity");
/// assert!(m.remove(Pair::new(0, 1)));
/// assert!(m.try_insert(Pair::new(1, 2)));
/// m.assert_valid();
/// ```
#[derive(Clone, Debug)]
pub struct BMatching {
    cap: usize,
    len: usize,
    /// Incident-edge count per node (index-addressed by rack id).
    degree: Vec<u32>,
    /// Fixed-stride adjacency: node `v`'s incident edges occupy
    /// `incident[v * cap .. v * cap + degree[v]]`.
    incident: Vec<Pair>,
}

impl BMatching {
    /// Empty matching over `n` racks with degree cap `b ≥ 1`.
    pub fn new(n: usize, b: usize) -> Self {
        assert!(b >= 1, "degree cap must be positive");
        Self {
            cap: b,
            len: 0,
            degree: vec![0; n],
            incident: vec![slot_filler(); n * b],
        }
    }

    /// Degree cap `b`.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.degree.len()
    }

    /// Number of matching edges.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the matching is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Node `v`'s adjacency block (valid prefix only).
    #[inline]
    fn block(&self, v: NodeId) -> &[Pair] {
        let v = v as usize;
        &self.incident[v * self.cap..v * self.cap + self.degree[v] as usize]
    }

    /// Whether `pair` is a matching edge: one bounded scan of the `lo`
    /// endpoint's block (≤ `b` packed-`u64` compares, no hashing).
    #[inline]
    pub fn contains(&self, pair: Pair) -> bool {
        self.block(pair.lo()).contains(&pair)
    }

    /// Position of `pair` inside `v`'s adjacency block, if present — the
    /// same bounded scan as [`BMatching::contains`], but returning the slot
    /// index so overlays aligned to the fixed-stride layout (the intrusive
    /// recency lists of [`crate::recency::LruBMatching`]) can address their
    /// per-slot state without a second lookup structure.
    #[inline]
    pub fn position(&self, v: NodeId, pair: Pair) -> Option<usize> {
        self.block(v).iter().position(|&e| e == pair)
    }

    /// Current number of matching edges incident to `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.degree[v as usize] as usize
    }

    /// Whether `pair` could be inserted without violating the degree cap.
    pub fn can_insert(&self, pair: Pair) -> bool {
        !self.contains(pair)
            && self.degree(pair.lo()) < self.cap
            && self.degree(pair.hi()) < self.cap
    }

    /// Appends `pair` to `v`'s block (caller checked cap and absence).
    #[inline]
    fn push_incident(&mut self, v: NodeId, pair: Pair) {
        let v = v as usize;
        self.incident[v * self.cap + self.degree[v] as usize] = pair;
        self.degree[v] += 1;
    }

    /// Inserts `pair` if absent and within the cap; returns whether inserted.
    pub fn try_insert(&mut self, pair: Pair) -> bool {
        if !self.can_insert(pair) {
            return false;
        }
        self.push_incident(pair.lo(), pair);
        self.push_incident(pair.hi(), pair);
        self.len += 1;
        true
    }

    /// Inserts `pair`; panics if present or over the cap (use when the caller
    /// has already made room — a violated cap is an algorithm bug).
    pub fn insert(&mut self, pair: Pair) {
        assert!(
            self.try_insert(pair),
            "insert of {pair} violates b-matching invariant"
        );
    }

    /// Swap-removes `pair` from `v`'s block; returns whether it was there.
    #[inline]
    fn remove_incident(&mut self, v: NodeId, pair: Pair) -> bool {
        let v = v as usize;
        let d = self.degree[v] as usize;
        let block = &mut self.incident[v * self.cap..v * self.cap + d];
        match block.iter().position(|&e| e == pair) {
            None => false,
            Some(slot) => {
                block[slot] = block[d - 1];
                self.degree[v] -= 1;
                true
            }
        }
    }

    /// Removes `pair`; returns whether it was present.
    pub fn remove(&mut self, pair: Pair) -> bool {
        if !self.remove_incident(pair.lo(), pair) {
            return false;
        }
        let also = self.remove_incident(pair.hi(), pair);
        debug_assert!(also, "adjacency blocks out of sync at {pair}");
        self.len -= 1;
        true
    }

    /// The matching edges incident to `v` (unspecified order).
    pub fn incident_edges(&self, v: NodeId) -> &[Pair] {
        self.block(v)
    }

    /// Iterates over all matching edges (unspecified order). Each edge sits
    /// in two blocks; it is yielded from its `lo` endpoint's block only.
    pub fn edges(&self) -> impl Iterator<Item = Pair> + '_ {
        (0..self.degree.len() as NodeId)
            .flat_map(move |v| self.block(v).iter().copied().filter(move |p| p.lo() == v))
    }

    /// Removes all edges.
    pub fn clear(&mut self) {
        self.degree.fill(0);
        self.len = 0;
    }

    /// Exhaustive invariant check (O(n·b)); used by tests and debug builds.
    pub fn assert_valid(&self) {
        let mut counted = 0usize;
        for v in 0..self.degree.len() as NodeId {
            let block = self.block(v);
            assert!(block.len() <= self.cap, "degree cap violated at {v}");
            for (i, &e) in block.iter().enumerate() {
                assert!(e.contains(v), "foreign edge {e} in block of {v}");
                assert!(
                    !block[..i].contains(&e),
                    "duplicate incident edge {e} at {v}"
                );
                let other = e.other(v);
                assert!(
                    self.block(other).contains(&e),
                    "edge {e} missing from partner block at {other}"
                );
                counted += 1;
            }
        }
        assert_eq!(counted, 2 * self.len, "edge count out of sync");
    }
}

/// Checks that `edges` forms a valid b-matching (no duplicates, degrees ≤ b).
pub fn is_valid_b_matching(edges: &[Pair], b: usize) -> bool {
    let mut degree: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
    let mut seen = std::collections::HashSet::new();
    for &e in edges {
        if !seen.insert(e) {
            return false;
        }
        for v in [e.lo(), e.hi()] {
            let d = degree.entry(v).or_insert(0);
            *d += 1;
            if *d > b {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(a, b)
    }

    #[test]
    fn insert_respects_cap() {
        let mut m = BMatching::new(4, 1);
        assert!(m.try_insert(p(0, 1)));
        assert!(!m.try_insert(p(1, 2)), "degree of 1 would exceed cap");
        assert!(m.try_insert(p(2, 3)));
        assert_eq!(m.len(), 2);
        m.assert_valid();
    }

    #[test]
    fn b_two_allows_two_edges_per_node() {
        let mut m = BMatching::new(4, 2);
        assert!(m.try_insert(p(0, 1)));
        assert!(m.try_insert(p(0, 2)));
        assert!(!m.try_insert(p(0, 3)));
        assert_eq!(m.degree(0), 2);
        m.assert_valid();
    }

    #[test]
    fn remove_frees_capacity() {
        let mut m = BMatching::new(3, 1);
        m.insert(p(0, 1));
        assert!(m.remove(p(0, 1)));
        assert!(!m.remove(p(0, 1)));
        assert!(m.try_insert(p(0, 2)));
        m.assert_valid();
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut m = BMatching::new(3, 2);
        assert!(m.try_insert(p(0, 1)));
        assert!(!m.try_insert(p(1, 0)), "same unordered pair");
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "violates b-matching invariant")]
    fn hard_insert_panics_over_cap() {
        let mut m = BMatching::new(3, 1);
        m.insert(p(0, 1));
        m.insert(p(1, 2));
    }

    #[test]
    fn incident_edges_tracked() {
        let mut m = BMatching::new(5, 3);
        m.insert(p(0, 1));
        m.insert(p(0, 2));
        m.insert(p(0, 3));
        let mut inc: Vec<Pair> = m.incident_edges(0).to_vec();
        inc.sort();
        assert_eq!(inc, vec![p(0, 1), p(0, 2), p(0, 3)]);
        assert_eq!(m.incident_edges(4), &[]);
    }

    #[test]
    fn clear_resets() {
        let mut m = BMatching::new(3, 1);
        m.insert(p(0, 1));
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.degree(0), 0);
        assert!(m.try_insert(p(0, 2)));
    }

    #[test]
    fn incident_order_is_append_and_swap_remove() {
        // R-BMA's lazy prune scans incident_edges in order and removes the
        // first marked hit, so the block's order evolution (append on
        // insert, swap-with-last on remove) is load-bearing: pin it.
        let mut m = BMatching::new(6, 4);
        for v in [1u32, 2, 3, 4] {
            m.insert(p(0, v));
        }
        assert_eq!(m.incident_edges(0), &[p(0, 1), p(0, 2), p(0, 3), p(0, 4)]);
        m.remove(p(0, 2)); // swap-remove: last edge fills the hole
        assert_eq!(m.incident_edges(0), &[p(0, 1), p(0, 4), p(0, 3)]);
        m.insert(p(0, 5)); // append at the tail
        assert_eq!(m.incident_edges(0), &[p(0, 1), p(0, 4), p(0, 3), p(0, 5)]);
        m.assert_valid();
    }

    #[test]
    fn edges_iterates_each_edge_once_after_churn() {
        let mut m = BMatching::new(8, 3);
        for i in 0..200u32 {
            let a = i % 8;
            let b = (a + 1 + i % 7) % 8;
            if a == b {
                continue;
            }
            let pair = p(a, b);
            if m.contains(pair) {
                m.remove(pair);
            } else {
                let _ = m.try_insert(pair);
            }
        }
        let listed: Vec<Pair> = m.edges().collect();
        assert_eq!(listed.len(), m.len());
        let distinct: std::collections::HashSet<Pair> = listed.iter().copied().collect();
        assert_eq!(distinct.len(), listed.len(), "edges() must not duplicate");
        for e in &distinct {
            assert!(m.contains(*e));
        }
        m.assert_valid();
    }

    #[test]
    fn validity_checker() {
        assert!(is_valid_b_matching(&[p(0, 1), p(2, 3)], 1));
        assert!(!is_valid_b_matching(&[p(0, 1), p(1, 2)], 1));
        assert!(is_valid_b_matching(&[p(0, 1), p(1, 2)], 2));
        assert!(
            !is_valid_b_matching(&[p(0, 1), p(0, 1)], 5),
            "duplicate edge"
        );
    }
}

//! The dynamic b-matching `M` that online algorithms reconfigure.
//!
//! Invariant (§1.1): every node has at most `b` incident matching edges.
//! The structure tracks per-node incident sets so membership, insertion,
//! removal and degree queries are all O(1), and exposes enough surface for
//! both R-BMA's lazy-removal mode (callers pick which incident edge to
//! prune) and BMA's counter-driven evictions.

use dcn_topology::{NodeId, Pair};
use dcn_util::{FxHashSet, IndexedSet};

/// A degree-capped dynamic edge set over racks `0..n`.
///
/// ```
/// use dcn_matching::BMatching;
/// use dcn_topology::Pair;
///
/// let mut m = BMatching::new(4, 1); // 4 racks, one circuit each
/// assert!(m.try_insert(Pair::new(0, 1)));
/// assert!(!m.try_insert(Pair::new(1, 2)), "rack 1 is at capacity");
/// assert!(m.remove(Pair::new(0, 1)));
/// assert!(m.try_insert(Pair::new(1, 2)));
/// m.assert_valid();
/// ```
#[derive(Clone, Debug)]
pub struct BMatching {
    cap: usize,
    edges: FxHashSet<Pair>,
    incident: Vec<IndexedSet<Pair>>,
}

impl BMatching {
    /// Empty matching over `n` racks with degree cap `b ≥ 1`.
    pub fn new(n: usize, b: usize) -> Self {
        assert!(b >= 1, "degree cap must be positive");
        Self {
            cap: b,
            edges: FxHashSet::default(),
            incident: (0..n).map(|_| IndexedSet::new()).collect(),
        }
    }

    /// Degree cap `b`.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.incident.len()
    }

    /// Number of matching edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the matching is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether `pair` is a matching edge.
    #[inline]
    pub fn contains(&self, pair: Pair) -> bool {
        self.edges.contains(&pair)
    }

    /// Current number of matching edges incident to `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.incident[v as usize].len()
    }

    /// Whether `pair` could be inserted without violating the degree cap.
    pub fn can_insert(&self, pair: Pair) -> bool {
        !self.contains(pair)
            && self.degree(pair.lo()) < self.cap
            && self.degree(pair.hi()) < self.cap
    }

    /// Inserts `pair` if absent and within the cap; returns whether inserted.
    pub fn try_insert(&mut self, pair: Pair) -> bool {
        if !self.can_insert(pair) {
            return false;
        }
        self.edges.insert(pair);
        self.incident[pair.lo() as usize].insert(pair);
        self.incident[pair.hi() as usize].insert(pair);
        true
    }

    /// Inserts `pair`; panics if present or over the cap (use when the caller
    /// has already made room — a violated cap is an algorithm bug).
    pub fn insert(&mut self, pair: Pair) {
        assert!(
            self.try_insert(pair),
            "insert of {pair} violates b-matching invariant"
        );
    }

    /// Removes `pair`; returns whether it was present.
    pub fn remove(&mut self, pair: Pair) -> bool {
        if !self.edges.remove(&pair) {
            return false;
        }
        self.incident[pair.lo() as usize].remove(&pair);
        self.incident[pair.hi() as usize].remove(&pair);
        true
    }

    /// The matching edges incident to `v` (unspecified order).
    pub fn incident_edges(&self, v: NodeId) -> &[Pair] {
        self.incident[v as usize].as_slice()
    }

    /// Iterates over all matching edges (unspecified order).
    pub fn edges(&self) -> impl Iterator<Item = Pair> + '_ {
        self.edges.iter().copied()
    }

    /// Removes all edges.
    pub fn clear(&mut self) {
        self.edges.clear();
        self.incident.iter_mut().for_each(IndexedSet::clear);
    }

    /// Exhaustive invariant check (O(n + m)); used by tests and debug builds.
    pub fn assert_valid(&self) {
        let mut recount = vec![0usize; self.incident.len()];
        for &e in &self.edges {
            recount[e.lo() as usize] += 1;
            recount[e.hi() as usize] += 1;
            assert!(self.incident[e.lo() as usize].contains(&e));
            assert!(self.incident[e.hi() as usize].contains(&e));
        }
        for (v, set) in self.incident.iter().enumerate() {
            assert_eq!(set.len(), recount[v], "incident set out of sync at {v}");
            assert!(set.len() <= self.cap, "degree cap violated at {v}");
            for e in set.iter() {
                assert!(self.edges.contains(e), "stale incident edge at {v}");
            }
        }
    }
}

/// Checks that `edges` forms a valid b-matching (no duplicates, degrees ≤ b).
pub fn is_valid_b_matching(edges: &[Pair], b: usize) -> bool {
    let mut degree: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
    let mut seen = std::collections::HashSet::new();
    for &e in edges {
        if !seen.insert(e) {
            return false;
        }
        for v in [e.lo(), e.hi()] {
            let d = degree.entry(v).or_insert(0);
            *d += 1;
            if *d > b {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(a, b)
    }

    #[test]
    fn insert_respects_cap() {
        let mut m = BMatching::new(4, 1);
        assert!(m.try_insert(p(0, 1)));
        assert!(!m.try_insert(p(1, 2)), "degree of 1 would exceed cap");
        assert!(m.try_insert(p(2, 3)));
        assert_eq!(m.len(), 2);
        m.assert_valid();
    }

    #[test]
    fn b_two_allows_two_edges_per_node() {
        let mut m = BMatching::new(4, 2);
        assert!(m.try_insert(p(0, 1)));
        assert!(m.try_insert(p(0, 2)));
        assert!(!m.try_insert(p(0, 3)));
        assert_eq!(m.degree(0), 2);
        m.assert_valid();
    }

    #[test]
    fn remove_frees_capacity() {
        let mut m = BMatching::new(3, 1);
        m.insert(p(0, 1));
        assert!(m.remove(p(0, 1)));
        assert!(!m.remove(p(0, 1)));
        assert!(m.try_insert(p(0, 2)));
        m.assert_valid();
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut m = BMatching::new(3, 2);
        assert!(m.try_insert(p(0, 1)));
        assert!(!m.try_insert(p(1, 0)), "same unordered pair");
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "violates b-matching invariant")]
    fn hard_insert_panics_over_cap() {
        let mut m = BMatching::new(3, 1);
        m.insert(p(0, 1));
        m.insert(p(1, 2));
    }

    #[test]
    fn incident_edges_tracked() {
        let mut m = BMatching::new(5, 3);
        m.insert(p(0, 1));
        m.insert(p(0, 2));
        m.insert(p(0, 3));
        let mut inc: Vec<Pair> = m.incident_edges(0).to_vec();
        inc.sort();
        assert_eq!(inc, vec![p(0, 1), p(0, 2), p(0, 3)]);
        assert_eq!(m.incident_edges(4), &[]);
    }

    #[test]
    fn clear_resets() {
        let mut m = BMatching::new(3, 1);
        m.insert(p(0, 1));
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.degree(0), 0);
        assert!(m.try_insert(p(0, 2)));
    }

    #[test]
    fn validity_checker() {
        assert!(is_valid_b_matching(&[p(0, 1), p(2, 3)], 1));
        assert!(!is_valid_b_matching(&[p(0, 1), p(1, 2)], 1));
        assert!(is_valid_b_matching(&[p(0, 1), p(1, 2)], 2));
        assert!(
            !is_valid_b_matching(&[p(0, 1), p(0, 1)], 5),
            "duplicate edge"
        );
    }
}

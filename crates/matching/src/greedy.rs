//! Greedy heavy matchings — the classic ½-approximation and its b-matching
//! generalization (cf. Hanauer et al. \[40\], who study exactly these greedy
//! schemes for reconfigurable datacenters).

use crate::WeightedEdge;
use dcn_topology::Pair;

/// Greedy maximum-weight matching: scan edges by decreasing weight, keep an
/// edge iff both endpoints are still free. Guarantees ≥ ½ of the optimum.
/// Ties are broken by (u, v) for determinism. Edges with non-positive weight
/// are skipped (they can never improve a matching).
pub fn greedy_matching(n: usize, edges: &[WeightedEdge]) -> Vec<Pair> {
    greedy_b_matching(n, edges, 1)
}

/// Greedy maximum-weight b-matching: like [`greedy_matching`] but each node
/// may be covered up to `b` times.
pub fn greedy_b_matching(n: usize, edges: &[WeightedEdge], b: usize) -> Vec<Pair> {
    assert!(b >= 1);
    let mut sorted: Vec<&WeightedEdge> = edges.iter().filter(|e| e.weight > 0).collect();
    sorted.sort_by(|x, y| {
        y.weight
            .cmp(&x.weight)
            .then_with(|| (x.u, x.v).cmp(&(y.u, y.v)))
    });
    let mut degree = vec![0usize; n];
    let mut chosen = Vec::new();
    let mut taken = std::collections::HashSet::new();
    for e in sorted {
        let pair = Pair::new(e.u, e.v);
        if degree[e.u as usize] < b && degree[e.v as usize] < b && taken.insert(pair) {
            degree[e.u as usize] += 1;
            degree[e.v as usize] += 1;
            chosen.push(pair);
        }
    }
    chosen
}

/// Total weight of `pairs` under the weight table given by `edges`
/// (missing pairs count 0; duplicates in `edges` are summed — callers are
/// expected to pass deduplicated candidate lists).
pub fn matching_weight(pairs: &[Pair], edges: &[WeightedEdge]) -> i64 {
    let table: std::collections::HashMap<Pair, i64> = edges
        .iter()
        .map(|e| (Pair::new(e.u, e.v), e.weight))
        .collect();
    pairs
        .iter()
        .map(|p| table.get(p).copied().unwrap_or(0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmatching::is_valid_b_matching;
    use crate::brute::brute_force_max_weight_b_matching;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn we(u: u32, v: u32, w: i64) -> WeightedEdge {
        WeightedEdge::new(u, v, w)
    }

    #[test]
    fn picks_heaviest_compatible() {
        // Path 0-1-2 with weights 5, 4: greedy takes 5 only.
        let m = greedy_matching(3, &[we(0, 1, 5), we(1, 2, 4)]);
        assert_eq!(m, vec![Pair::new(0, 1)]);
    }

    #[test]
    fn greedy_can_be_suboptimal_but_half() {
        // Path 0-1-2-3 with weights 3,4,3: greedy takes 4 (weight 4),
        // optimum takes 3+3=6. 4 >= 6/2.
        let edges = [we(0, 1, 3), we(1, 2, 4), we(2, 3, 3)];
        let m = greedy_matching(4, &edges);
        assert_eq!(matching_weight(&m, &edges), 4);
        let (opt_w, _) = brute_force_max_weight_b_matching(4, &edges, 1);
        assert_eq!(opt_w, 6);
        assert!(2 * matching_weight(&m, &edges) >= opt_w);
    }

    #[test]
    fn half_approximation_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(17);
        for trial in 0..25 {
            let n = 6 + (trial % 3);
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.random_bool(0.6) {
                        edges.push(we(u, v, rng.random_range(1..50)));
                    }
                }
            }
            for b in 1..=2usize {
                let m = greedy_b_matching(n, &edges, b);
                assert!(is_valid_b_matching(&m, b));
                let (opt, _) = brute_force_max_weight_b_matching(n, &edges, b);
                let got = matching_weight(&m, &edges);
                assert!(2 * got >= opt, "greedy {got} < opt/2 {}", opt / 2);
            }
        }
    }

    #[test]
    fn skips_non_positive_weights() {
        let m = greedy_matching(4, &[we(0, 1, 0), we(2, 3, -5)]);
        assert!(m.is_empty());
    }

    #[test]
    fn b_matching_respects_cap() {
        let edges = [we(0, 1, 9), we(0, 2, 8), we(0, 3, 7)];
        let m = greedy_b_matching(4, &edges, 2);
        assert_eq!(m.len(), 2);
        assert!(is_valid_b_matching(&m, 2));
        assert_eq!(matching_weight(&m, &edges), 17);
    }

    #[test]
    fn deterministic_order() {
        let edges = [we(0, 1, 5), we(2, 3, 5), we(1, 2, 5)];
        let a = greedy_matching(4, &edges);
        let b = greedy_matching(4, &edges);
        assert_eq!(a, b);
    }
}

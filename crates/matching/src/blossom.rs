//! Exact maximum-weight matching in general graphs — Edmonds' blossom
//! algorithm in the O(n³) primal–dual formulation (Galil \[31\]).
//!
//! This is a faithful Rust port of the classic `mwmatching` formulation by
//! Joris van Rantwijk, which is also the implementation behind NetworkX's
//! `max_weight_matching` — i.e. *exactly* the routine the paper's SO-BMA
//! baseline invokes (§3.1). The port keeps the original's structure
//! (stages, dual adjustment with four delta types, blossom
//! creation/expansion, least-slack edge tracking) so that it can be audited
//! against the reference, and is validated in tests against a brute-force
//! optimum on thousands of random graphs plus an independent
//! complementary-slackness optimality certificate.
//!
//! Weights must be integers (`i64`); the algorithm then runs entirely in
//! integer arithmetic (the S-S edge slack is provably even when weights are
//! integral, which the implementation debug-asserts).

use crate::WeightedEdge;
use dcn_topology::Pair;

const NONE: usize = usize::MAX;

/// Computes a maximum-weight matching; returns `mate[v] = Some(w)` iff edge
/// `{v, w}` is matched. The matching maximizes total weight (it is *not*
/// required to have maximum cardinality). Edges with non-positive weight are
/// never matched.
///
/// Panics if an edge references a vertex `>= n` or has equal endpoints.
///
/// ```
/// use dcn_matching::{max_weight_matching, WeightedEdge};
///
/// // Path 0-1-2-3 with weights 3, 4, 3: the outer edges win (3+3 > 4).
/// let edges = [
///     WeightedEdge::new(0, 1, 3),
///     WeightedEdge::new(1, 2, 4),
///     WeightedEdge::new(2, 3, 3),
/// ];
/// let mate = max_weight_matching(4, &edges);
/// assert_eq!(mate, vec![Some(1), Some(0), Some(3), Some(2)]);
/// ```
pub fn max_weight_matching(n: usize, edges: &[WeightedEdge]) -> Vec<Option<u32>> {
    for e in edges {
        assert!(e.u != e.v, "self-loop in matching input");
        assert!(
            (e.u as usize) < n && (e.v as usize) < n,
            "edge endpoint out of range"
        );
    }
    // Non-positive edges can never be part of a maximum *weight* matching;
    // dropping them early keeps the dual start value tight.
    let filtered: Vec<(usize, usize, i64)> = edges
        .iter()
        .filter(|e| e.weight > 0)
        .map(|e| (e.u as usize, e.v as usize, e.weight))
        .collect();
    if filtered.is_empty() || n == 0 {
        return vec![None; n];
    }
    let mut m = Matcher::new(n, filtered);
    m.solve();
    debug_assert!(m.verify_optimum(), "blossom optimality certificate failed");
    m.mate
        .iter()
        .map(|&p| {
            if p == NONE {
                None
            } else {
                Some(m.endpoint[p] as u32)
            }
        })
        .collect()
}

/// Like [`max_weight_matching`] but returns the matched pairs directly.
pub fn max_weight_matching_pairs(n: usize, edges: &[WeightedEdge]) -> Vec<Pair> {
    let mate = max_weight_matching(n, edges);
    let mut pairs = Vec::new();
    for (v, &m) in mate.iter().enumerate() {
        if let Some(w) = m {
            if (v as u32) < w {
                pairs.push(Pair::new(v as u32, w));
            }
        }
    }
    pairs
}

/// Internal solver state; field names follow the reference implementation.
struct Matcher {
    nvertex: usize,
    nedge: usize,
    /// (i, j, weight) per edge.
    edges: Vec<(usize, usize, i64)>,
    /// endpoint[p]: vertex at directed endpoint p (edge p/2, side p%2).
    endpoint: Vec<usize>,
    /// neighbend[v]: remote endpoints of edges incident to v.
    neighbend: Vec<Vec<usize>>,
    /// mate[v]: remote *endpoint* of matched edge, or NONE.
    mate: Vec<usize>,
    /// label[b] for vertex/blossom b: 0 free, 1 S, 2 T, 5 breadcrumb.
    label: Vec<u8>,
    /// labelend[b]: endpoint through which the label was acquired.
    labelend: Vec<usize>,
    /// inblossom[v]: top-level blossom containing vertex v.
    inblossom: Vec<usize>,
    blossomparent: Vec<usize>,
    blossomchilds: Vec<Vec<usize>>,
    blossombase: Vec<usize>,
    blossomendps: Vec<Vec<usize>>,
    /// bestedge[b]: least-slack edge to a different S-blossom.
    bestedge: Vec<usize>,
    blossombestedges: Vec<Option<Vec<usize>>>,
    unusedblossoms: Vec<usize>,
    dualvar: Vec<i64>,
    allowedge: Vec<bool>,
    queue: Vec<usize>,
}

impl Matcher {
    fn new(nvertex: usize, edges: Vec<(usize, usize, i64)>) -> Self {
        let nedge = edges.len();
        let maxweight = edges.iter().map(|e| e.2).max().unwrap_or(0).max(0);
        let mut endpoint = Vec::with_capacity(2 * nedge);
        for &(i, j, _) in &edges {
            endpoint.push(i);
            endpoint.push(j);
        }
        let mut neighbend = vec![Vec::new(); nvertex];
        for (k, &(i, j, _)) in edges.iter().enumerate() {
            neighbend[i].push(2 * k + 1);
            neighbend[j].push(2 * k);
        }
        let mut dualvar = vec![maxweight; nvertex];
        dualvar.extend(std::iter::repeat_n(0, nvertex));
        Self {
            nvertex,
            nedge,
            edges,
            endpoint,
            neighbend,
            mate: vec![NONE; nvertex],
            label: vec![0; 2 * nvertex],
            labelend: vec![NONE; 2 * nvertex],
            inblossom: (0..nvertex).collect(),
            blossomparent: vec![NONE; 2 * nvertex],
            blossomchilds: vec![Vec::new(); 2 * nvertex],
            blossombase: (0..nvertex)
                .chain(std::iter::repeat_n(NONE, nvertex))
                .collect(),
            blossomendps: vec![Vec::new(); 2 * nvertex],
            bestedge: vec![NONE; 2 * nvertex],
            blossombestedges: vec![None; 2 * nvertex],
            unusedblossoms: (nvertex..2 * nvertex).collect(),
            dualvar,
            allowedge: vec![false; nedge],
            queue: Vec::new(),
        }
    }

    /// Slack of edge k: π_i + π_j − 2·w_k (non-negative for tight duals).
    #[inline]
    fn slack(&self, k: usize) -> i64 {
        let (i, j, wt) = self.edges[k];
        self.dualvar[i] + self.dualvar[j] - 2 * wt
    }

    /// Collects the leaf vertices of blossom `b` into `out`.
    fn collect_leaves(&self, b: usize, out: &mut Vec<usize>) {
        if b < self.nvertex {
            out.push(b);
        } else {
            for &t in &self.blossomchilds[b] {
                self.collect_leaves(t, out);
            }
        }
    }

    /// Assigns label `t` to vertex `w` (through endpoint `p`), propagating
    /// S-labels to mates of T-labeled bases.
    fn assign_label(&mut self, w: usize, t: u8, p: usize) {
        let b = self.inblossom[w];
        debug_assert!(self.label[w] == 0 && self.label[b] == 0);
        self.label[w] = t;
        self.label[b] = t;
        self.labelend[w] = p;
        self.labelend[b] = p;
        self.bestedge[w] = NONE;
        self.bestedge[b] = NONE;
        if t == 1 {
            let mut leaves = Vec::new();
            self.collect_leaves(b, &mut leaves);
            self.queue.extend(leaves);
        } else if t == 2 {
            let base = self.blossombase[b];
            debug_assert!(self.mate[base] != NONE);
            let mate_ep = self.mate[base];
            self.assign_label(self.endpoint[mate_ep], 1, mate_ep ^ 1);
        }
    }

    /// Traces back from S-vertices `v` and `w`; returns the base of a new
    /// blossom (common ancestor) or NONE if an augmenting path was found.
    fn scan_blossom(&mut self, mut v: usize, mut w: usize) -> usize {
        let mut path = Vec::new();
        let mut base = NONE;
        while v != NONE || w != NONE {
            let mut b = self.inblossom[v];
            if self.label[b] & 4 != 0 {
                base = self.blossombase[b];
                break;
            }
            debug_assert_eq!(self.label[b], 1);
            path.push(b);
            self.label[b] = 5;
            debug_assert_eq!(self.labelend[b], self.mate[self.blossombase[b]]);
            if self.labelend[b] == NONE {
                v = NONE;
            } else {
                v = self.endpoint[self.labelend[b]];
                b = self.inblossom[v];
                debug_assert_eq!(self.label[b], 2);
                debug_assert!(self.labelend[b] != NONE);
                v = self.endpoint[self.labelend[b]];
            }
            if w != NONE {
                std::mem::swap(&mut v, &mut w);
            }
        }
        for b in path {
            self.label[b] = 1;
        }
        base
    }

    /// Creates a new blossom with the given base, closed by edge `k`.
    fn add_blossom(&mut self, base: usize, k: usize) {
        let (mut v, mut w, _) = self.edges[k];
        let bb = self.inblossom[base];
        let mut bv = self.inblossom[v];
        let mut bw = self.inblossom[w];
        let b = self.unusedblossoms.pop().expect("blossom pool exhausted");
        self.blossombase[b] = base;
        self.blossomparent[b] = NONE;
        self.blossomparent[bb] = b;

        let mut path = Vec::new();
        let mut endps = Vec::new();
        while bv != bb {
            self.blossomparent[bv] = b;
            path.push(bv);
            endps.push(self.labelend[bv]);
            debug_assert!(
                self.label[bv] == 2
                    || (self.label[bv] == 1
                        && self.labelend[bv] == self.mate[self.blossombase[bv]])
            );
            debug_assert!(self.labelend[bv] != NONE);
            v = self.endpoint[self.labelend[bv]];
            bv = self.inblossom[v];
        }
        path.push(bb);
        path.reverse();
        endps.reverse();
        endps.push(2 * k);
        while bw != bb {
            self.blossomparent[bw] = b;
            path.push(bw);
            endps.push(self.labelend[bw] ^ 1);
            debug_assert!(
                self.label[bw] == 2
                    || (self.label[bw] == 1
                        && self.labelend[bw] == self.mate[self.blossombase[bw]])
            );
            debug_assert!(self.labelend[bw] != NONE);
            w = self.endpoint[self.labelend[bw]];
            bw = self.inblossom[w];
        }

        debug_assert_eq!(self.label[bb], 1);
        self.label[b] = 1;
        self.labelend[b] = self.labelend[bb];
        self.dualvar[b] = 0;
        self.blossomchilds[b] = path.clone();
        self.blossomendps[b] = endps;

        // Relabel the blossom's vertices; former T-vertices become S.
        let mut leaves = Vec::new();
        self.collect_leaves(b, &mut leaves);
        for &lv in &leaves {
            if self.label[self.inblossom[lv]] == 2 {
                self.queue.push(lv);
            }
            self.inblossom[lv] = b;
        }

        // Merge least-slack edge lists of the sub-blossoms.
        let mut bestedgeto = vec![NONE; 2 * self.nvertex];
        for &bv in &path {
            let nblists: Vec<Vec<usize>> = match self.blossombestedges[bv].take() {
                Some(list) => vec![list],
                None => {
                    let mut lvs = Vec::new();
                    self.collect_leaves(bv, &mut lvs);
                    lvs.iter()
                        .map(|&lv| self.neighbend[lv].iter().map(|&p| p / 2).collect())
                        .collect()
                }
            };
            for nblist in nblists {
                for k2 in nblist {
                    let (mut i, mut j, _) = self.edges[k2];
                    if self.inblossom[j] == b {
                        std::mem::swap(&mut i, &mut j);
                    }
                    let _ = i;
                    let bj = self.inblossom[j];
                    if bj != b
                        && self.label[bj] == 1
                        && (bestedgeto[bj] == NONE || self.slack(k2) < self.slack(bestedgeto[bj]))
                    {
                        bestedgeto[bj] = k2;
                    }
                }
            }
            self.bestedge[bv] = NONE;
        }
        let bel: Vec<usize> = bestedgeto.into_iter().filter(|&k2| k2 != NONE).collect();
        self.bestedge[b] = NONE;
        for &k2 in &bel {
            if self.bestedge[b] == NONE || self.slack(k2) < self.slack(self.bestedge[b]) {
                self.bestedge[b] = k2;
            }
        }
        self.blossombestedges[b] = Some(bel);
    }

    /// Expands (dissolves) blossom `b`; if `endstage` is false, `b` is a
    /// T-blossom being expanded mid-stage and its children are relabeled.
    fn expand_blossom(&mut self, b: usize, endstage: bool) {
        let childs = self.blossomchilds[b].clone();
        for &s in &childs {
            self.blossomparent[s] = NONE;
            if s < self.nvertex {
                self.inblossom[s] = s;
            } else if endstage && self.dualvar[s] == 0 {
                self.expand_blossom(s, endstage);
            } else {
                let mut lvs = Vec::new();
                self.collect_leaves(s, &mut lvs);
                for lv in lvs {
                    self.inblossom[lv] = s;
                }
            }
        }
        if !endstage && self.label[b] == 2 {
            let endps = self.blossomendps[b].clone();
            let len = childs.len() as isize;
            let idx = |j: isize| -> usize { j.rem_euclid(len) as usize };
            debug_assert!(self.labelend[b] != NONE);
            let entrychild = self.inblossom[self.endpoint[self.labelend[b] ^ 1]];
            let mut j = childs
                .iter()
                .position(|&c| c == entrychild)
                .expect("entry child in blossom") as isize;
            let (jstep, endptrick): (isize, usize) = if j & 1 != 0 {
                j -= len;
                (1, 0)
            } else {
                (-1, 1)
            };
            let mut p = self.labelend[b];
            while j != 0 {
                // Relabel the T-sub-blossom.
                self.label[self.endpoint[p ^ 1]] = 0;
                let q = endps[idx(j - endptrick as isize)] ^ endptrick ^ 1;
                self.label[self.endpoint[q]] = 0;
                self.assign_label(self.endpoint[p ^ 1], 2, p);
                // Step to the next S-sub-blossom; its edges become allowed.
                self.allowedge[endps[idx(j - endptrick as isize)] / 2] = true;
                j += jstep;
                p = endps[idx(j - endptrick as isize)] ^ endptrick;
                self.allowedge[p / 2] = true;
                j += jstep;
            }
            // Relabel the base T-sub-blossom without stepping to its mate.
            let bv = childs[idx(j)];
            self.label[self.endpoint[p ^ 1]] = 2;
            self.label[bv] = 2;
            self.labelend[self.endpoint[p ^ 1]] = p;
            self.labelend[bv] = p;
            self.bestedge[bv] = NONE;
            // Continue along the blossom until back at entrychild, labeling
            // reached sub-blossoms T.
            j += jstep;
            while childs[idx(j)] != entrychild {
                let bv = childs[idx(j)];
                if self.label[bv] == 1 {
                    j += jstep;
                    continue;
                }
                let mut lvs = Vec::new();
                self.collect_leaves(bv, &mut lvs);
                let reached = lvs.iter().copied().find(|&v| self.label[v] != 0);
                if let Some(v) = reached {
                    debug_assert_eq!(self.label[v], 2);
                    debug_assert_eq!(self.inblossom[v], bv);
                    self.label[v] = 0;
                    let base_mate = self.mate[self.blossombase[bv]];
                    self.label[self.endpoint[base_mate]] = 0;
                    let le = self.labelend[v];
                    self.assign_label(v, 2, le);
                }
                j += jstep;
            }
        }
        // Recycle the blossom id.
        self.label[b] = 0;
        self.labelend[b] = NONE;
        self.blossomchilds[b].clear();
        self.blossomendps[b].clear();
        self.blossombase[b] = NONE;
        self.blossombestedges[b] = None;
        self.bestedge[b] = NONE;
        self.unusedblossoms.push(b);
    }

    /// Swaps matched/unmatched edges along the path from vertex `v` (inside
    /// blossom `b`) to the blossom base, then rotates the blossom so `v`
    /// becomes the base.
    fn augment_blossom(&mut self, b: usize, v: usize) {
        let mut t = v;
        while self.blossomparent[t] != b {
            t = self.blossomparent[t];
        }
        if t >= self.nvertex {
            self.augment_blossom(t, v);
        }
        let childs = self.blossomchilds[b].clone();
        let endps = self.blossomendps[b].clone();
        let len = childs.len() as isize;
        let idx = |j: isize| -> usize { j.rem_euclid(len) as usize };
        let i = childs
            .iter()
            .position(|&c| c == t)
            .expect("child in blossom");
        let mut j = i as isize;
        let (jstep, endptrick): (isize, usize) = if i & 1 != 0 {
            j -= len;
            (1, 0)
        } else {
            (-1, 1)
        };
        while j != 0 {
            j += jstep;
            let t1 = childs[idx(j)];
            let p = endps[idx(j - endptrick as isize)] ^ endptrick;
            if t1 >= self.nvertex {
                self.augment_blossom(t1, self.endpoint[p]);
            }
            j += jstep;
            let t2 = childs[idx(j)];
            if t2 >= self.nvertex {
                self.augment_blossom(t2, self.endpoint[p ^ 1]);
            }
            self.mate[self.endpoint[p]] = p ^ 1;
            self.mate[self.endpoint[p ^ 1]] = p;
        }
        self.blossomchilds[b].rotate_left(i);
        self.blossomendps[b].rotate_left(i);
        self.blossombase[b] = self.blossombase[self.blossomchilds[b][0]];
        debug_assert_eq!(self.blossombase[b], v);
    }

    /// Augments the matching along the path through tight edge `k`.
    fn augment_matching(&mut self, k: usize) {
        let (v, w, _) = self.edges[k];
        for (mut s, mut p) in [(v, 2 * k + 1), (w, 2 * k)] {
            loop {
                let bs = self.inblossom[s];
                debug_assert_eq!(self.label[bs], 1);
                debug_assert_eq!(self.labelend[bs], self.mate[self.blossombase[bs]]);
                if bs >= self.nvertex {
                    self.augment_blossom(bs, s);
                }
                self.mate[s] = p;
                if self.labelend[bs] == NONE {
                    break;
                }
                let t = self.endpoint[self.labelend[bs]];
                let bt = self.inblossom[t];
                debug_assert_eq!(self.label[bt], 2);
                debug_assert!(self.labelend[bt] != NONE);
                s = self.endpoint[self.labelend[bt]];
                let j = self.endpoint[self.labelend[bt] ^ 1];
                debug_assert_eq!(self.blossombase[bt], t);
                if bt >= self.nvertex {
                    self.augment_blossom(bt, j);
                }
                self.mate[j] = self.labelend[bt];
                p = self.labelend[bt] ^ 1;
            }
        }
    }

    /// Main loop: up to `nvertex` augmentation stages.
    fn solve(&mut self) {
        for _ in 0..self.nvertex {
            self.label.iter_mut().for_each(|l| *l = 0);
            self.bestedge.iter_mut().for_each(|e| *e = NONE);
            for be in &mut self.blossombestedges[self.nvertex..] {
                *be = None;
            }
            self.allowedge.iter_mut().for_each(|a| *a = false);
            self.queue.clear();
            for v in 0..self.nvertex {
                if self.mate[v] == NONE && self.label[self.inblossom[v]] == 0 {
                    self.assign_label(v, 1, NONE);
                }
            }
            let mut augmented = false;
            loop {
                while !self.queue.is_empty() && !augmented {
                    let v = self.queue.pop().expect("queue non-empty");
                    debug_assert_eq!(self.label[self.inblossom[v]], 1);
                    for idx_p in 0..self.neighbend[v].len() {
                        let p = self.neighbend[v][idx_p];
                        let k = p / 2;
                        let w = self.endpoint[p];
                        if self.inblossom[v] == self.inblossom[w] {
                            continue;
                        }
                        let mut kslack = 0;
                        if !self.allowedge[k] {
                            kslack = self.slack(k);
                            if kslack <= 0 {
                                self.allowedge[k] = true;
                            }
                        }
                        if self.allowedge[k] {
                            if self.label[self.inblossom[w]] == 0 {
                                self.assign_label(w, 2, p ^ 1);
                            } else if self.label[self.inblossom[w]] == 1 {
                                let base = self.scan_blossom(v, w);
                                if base != NONE {
                                    self.add_blossom(base, k);
                                } else {
                                    self.augment_matching(k);
                                    augmented = true;
                                    break;
                                }
                            } else if self.label[w] == 0 {
                                debug_assert_eq!(self.label[self.inblossom[w]], 2);
                                self.label[w] = 2;
                                self.labelend[w] = p ^ 1;
                            }
                        } else if self.label[self.inblossom[w]] == 1 {
                            let b = self.inblossom[v];
                            if self.bestedge[b] == NONE || kslack < self.slack(self.bestedge[b]) {
                                self.bestedge[b] = k;
                            }
                        } else if self.label[w] == 0
                            && (self.bestedge[w] == NONE || kslack < self.slack(self.bestedge[w]))
                        {
                            self.bestedge[w] = k;
                        }
                    }
                }
                if augmented {
                    break;
                }

                // Dual adjustment: pick the smallest of the four delta types.
                let mut deltatype = 1;
                let mut delta = self.dualvar[..self.nvertex]
                    .iter()
                    .copied()
                    .min()
                    .expect("nvertex > 0");
                let mut deltaedge = NONE;
                let mut deltablossom = NONE;
                for v in 0..self.nvertex {
                    if self.label[self.inblossom[v]] == 0 && self.bestedge[v] != NONE {
                        let d = self.slack(self.bestedge[v]);
                        if d < delta {
                            delta = d;
                            deltatype = 2;
                            deltaedge = self.bestedge[v];
                        }
                    }
                }
                for b in 0..2 * self.nvertex {
                    if self.blossomparent[b] == NONE
                        && self.label[b] == 1
                        && self.bestedge[b] != NONE
                    {
                        let kslack = self.slack(self.bestedge[b]);
                        debug_assert!(
                            kslack % 2 == 0,
                            "S-S slack must be even for integer weights"
                        );
                        let d = kslack / 2;
                        if d < delta {
                            delta = d;
                            deltatype = 3;
                            deltaedge = self.bestedge[b];
                        }
                    }
                }
                for b in self.nvertex..2 * self.nvertex {
                    if self.blossombase[b] != NONE
                        && self.blossomparent[b] == NONE
                        && self.label[b] == 2
                        && self.dualvar[b] < delta
                    {
                        delta = self.dualvar[b];
                        deltatype = 4;
                        deltablossom = b;
                    }
                }

                // Update dual variables.
                for v in 0..self.nvertex {
                    match self.label[self.inblossom[v]] {
                        1 => self.dualvar[v] -= delta,
                        2 => self.dualvar[v] += delta,
                        _ => {}
                    }
                }
                for b in self.nvertex..2 * self.nvertex {
                    if self.blossombase[b] != NONE && self.blossomparent[b] == NONE {
                        match self.label[b] {
                            1 => self.dualvar[b] += delta,
                            2 => self.dualvar[b] -= delta,
                            _ => {}
                        }
                    }
                }

                match deltatype {
                    1 => break, // optimum reached
                    2 => {
                        self.allowedge[deltaedge] = true;
                        let (mut i, j, _) = self.edges[deltaedge];
                        if self.label[self.inblossom[i]] == 0 {
                            i = j;
                        }
                        debug_assert_eq!(self.label[self.inblossom[i]], 1);
                        self.queue.push(i);
                    }
                    3 => {
                        self.allowedge[deltaedge] = true;
                        let (i, _, _) = self.edges[deltaedge];
                        debug_assert_eq!(self.label[self.inblossom[i]], 1);
                        self.queue.push(i);
                    }
                    4 => self.expand_blossom(deltablossom, false),
                    _ => unreachable!("invalid delta type"),
                }
            }
            if !augmented {
                break;
            }
            // End of stage: expand S-blossoms whose dual fell to zero.
            for b in self.nvertex..2 * self.nvertex {
                if self.blossomparent[b] == NONE
                    && self.blossombase[b] != NONE
                    && self.label[b] == 1
                    && self.dualvar[b] == 0
                {
                    self.expand_blossom(b, true);
                }
            }
        }
    }

    /// Complementary-slackness certificate: verifies the final matching and
    /// duals satisfy the LP optimality conditions. Returns true on success
    /// (used by debug assertions and tests).
    fn verify_optimum(&self) -> bool {
        if self.dualvar[..self.nvertex]
            .iter()
            .copied()
            .min()
            .unwrap_or(0)
            < 0
        {
            return false;
        }
        for k in 0..self.nedge {
            let (i, j, wt) = self.edges[k];
            let mut s = self.dualvar[i] + self.dualvar[j] - 2 * wt;
            let chain = |mut b: usize| {
                let mut list = vec![b];
                while self.blossomparent[b] != NONE {
                    b = self.blossomparent[b];
                    list.push(b);
                }
                list.reverse();
                list
            };
            let bi = chain(i);
            let bj = chain(j);
            for (x, y) in bi.iter().zip(bj.iter()) {
                if x != y {
                    break;
                }
                s += 2 * self.dualvar[*x];
            }
            if s < 0 {
                return false;
            }
            let matched_i = self.mate[i] != NONE && self.mate[i] / 2 == k;
            let matched_j = self.mate[j] != NONE && self.mate[j] / 2 == k;
            if (matched_i || matched_j) && !(matched_i && matched_j && s == 0) {
                return false;
            }
        }
        // Free vertices must have zero dual; blossoms with positive dual must
        // be full (odd endpoint list, alternately matched).
        for v in 0..self.nvertex {
            if self.mate[v] == NONE && self.dualvar[v] != 0 {
                return false;
            }
        }
        for b in self.nvertex..2 * self.nvertex {
            if self.blossombase[b] != NONE && self.dualvar[b] > 0 {
                if self.blossomendps[b].len() % 2 != 1 {
                    return false;
                }
                for p in self.blossomendps[b].iter().skip(1).step_by(2) {
                    if self.mate[self.endpoint[*p]] != p ^ 1 {
                        return false;
                    }
                    if self.mate[self.endpoint[p ^ 1]] != *p {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_max_weight_matching;
    use crate::greedy::matching_weight;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn we(u: u32, v: u32, w: i64) -> WeightedEdge {
        WeightedEdge::new(u, v, w)
    }

    fn weight_of(n: usize, edges: &[WeightedEdge]) -> i64 {
        let pairs = max_weight_matching_pairs(n, edges);
        matching_weight(&pairs, edges)
    }

    #[test]
    fn empty_and_trivial() {
        assert_eq!(max_weight_matching(0, &[]), Vec::<Option<u32>>::new());
        assert_eq!(max_weight_matching(3, &[]), vec![None, None, None]);
        let mate = max_weight_matching(2, &[we(0, 1, 5)]);
        assert_eq!(mate, vec![Some(1), Some(0)]);
    }

    #[test]
    fn path_picks_heavier_endpoint_pairs() {
        // 0-1 (3), 1-2 (4), 2-3 (3): optimum is {0-1, 2-3} with weight 6.
        let edges = [we(0, 1, 3), we(1, 2, 4), we(2, 3, 3)];
        let mate = max_weight_matching(4, &edges);
        assert_eq!(mate, vec![Some(1), Some(0), Some(3), Some(2)]);
    }

    #[test]
    fn prefers_weight_over_cardinality() {
        // Middle edge so heavy that a single edge beats two.
        let edges = [we(0, 1, 2), we(1, 2, 10), we(2, 3, 2)];
        let mate = max_weight_matching(4, &edges);
        assert_eq!(mate, vec![None, Some(2), Some(1), None]);
    }

    #[test]
    fn creates_s_blossom_and_uses_it() {
        // van-Rantwijk-style S-blossom case (0-indexed):
        // triangle 0-1-2 plus pendant 2-3.
        let edges = [we(0, 1, 8), we(0, 2, 9), we(1, 2, 10), we(2, 3, 7)];
        let mate = max_weight_matching(4, &edges);
        assert_eq!(mate, vec![Some(1), Some(0), Some(3), Some(2)]);
    }

    #[test]
    fn s_blossom_with_expansion() {
        // Triangle + two pendants forcing blossom expansion:
        // edges (0,1,8),(0,2,9),(1,2,10),(2,3,7),(0,5,5),(3,4,6).
        let edges = [
            we(0, 1, 8),
            we(0, 2, 9),
            we(1, 2, 10),
            we(2, 3, 7),
            we(0, 5, 5),
            we(3, 4, 6),
        ];
        let mate = max_weight_matching(6, &edges);
        assert_eq!(
            mate,
            vec![Some(5), Some(2), Some(1), Some(4), Some(3), Some(0)]
        );
    }

    #[test]
    fn t_blossom_relabel_cases() {
        // Three classic T-blossom expansion cases (0-indexed from the
        // reference test suite).
        let e1 = [
            we(0, 1, 9),
            we(0, 2, 8),
            we(1, 2, 10),
            we(0, 3, 5),
            we(3, 4, 4),
            we(0, 5, 3),
        ];
        let m1 = max_weight_matching(6, &e1);
        assert_eq!(
            m1,
            vec![Some(5), Some(2), Some(1), Some(4), Some(3), Some(0)]
        );

        let e2 = [
            we(0, 1, 9),
            we(0, 2, 8),
            we(1, 2, 10),
            we(0, 3, 5),
            we(3, 4, 3),
            we(0, 5, 4),
        ];
        let m2 = max_weight_matching(6, &e2);
        assert_eq!(
            m2,
            vec![Some(5), Some(2), Some(1), Some(4), Some(3), Some(0)]
        );

        let e3 = [
            we(0, 1, 9),
            we(0, 2, 8),
            we(1, 2, 10),
            we(0, 3, 5),
            we(3, 4, 3),
            we(2, 5, 4),
        ];
        let m3 = max_weight_matching(6, &e3);
        assert_eq!(
            m3,
            vec![Some(1), Some(0), Some(5), Some(4), Some(3), Some(2)]
        );
    }

    #[test]
    fn nested_s_blossom() {
        // Nested S-blossom used for augmentation (reference t41, 0-indexed):
        let edges = [
            we(0, 1, 9),
            we(0, 2, 9),
            we(1, 2, 10),
            we(1, 3, 8),
            we(2, 4, 8),
            we(3, 4, 10),
            we(4, 5, 6),
        ];
        let mate = max_weight_matching(6, &edges);
        assert_eq!(
            mate,
            vec![Some(2), Some(3), Some(0), Some(1), Some(5), Some(4)]
        );
    }

    #[test]
    fn nested_blossom_expands_to_augmenting_path() {
        // Reference t45 (0-indexed): create nested blossom, relabel as T in
        // more than one way, expand outer blossom.
        let edges = [
            we(0, 1, 45),
            we(0, 4, 45),
            we(1, 2, 50),
            we(2, 3, 45),
            we(3, 4, 50),
            we(0, 5, 30),
            we(2, 8, 35),
            we(4, 7, 35),
            we(4, 6, 26),
            we(7, 8, 5),
        ];
        let mate = max_weight_matching(9, &edges);
        // Verify optimal weight against brute force rather than a fixed
        // mate vector (ties can resolve differently).
        let pairs = max_weight_matching_pairs(9, &edges);
        let (opt_w, _) = brute_force_max_weight_matching(9, &edges);
        assert_eq!(matching_weight(&pairs, &edges), opt_w);
        // All vertices of the path should be matched.
        assert!(mate[0].is_some() && mate[2].is_some() && mate[4].is_some());
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(20240610);
        for trial in 0..200 {
            let n = 4 + (trial % 5); // 4..8 vertices
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.random_bool(0.55) {
                        edges.push(we(u, v, rng.random_range(1..40)));
                    }
                }
            }
            if edges.len() > 24 {
                edges.truncate(24);
            }
            let (opt_w, _) = brute_force_max_weight_matching(n, &edges);
            let got = weight_of(n, &edges);
            assert_eq!(
                got, opt_w,
                "trial {trial}: blossom {got} != brute {opt_w} on {edges:?}"
            );
        }
    }

    #[test]
    fn mate_vector_is_symmetric() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let n = 10;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.random_bool(0.4) {
                        edges.push(we(u, v, rng.random_range(1..100)));
                    }
                }
            }
            let mate = max_weight_matching(n, &edges);
            for (v, &m) in mate.iter().enumerate() {
                if let Some(w) = m {
                    assert_eq!(mate[w as usize], Some(v as u32), "asymmetric mate at {v}");
                }
            }
        }
    }

    #[test]
    fn ignores_nonpositive_edges() {
        let edges = [we(0, 1, -5), we(1, 2, 0), we(2, 3, 7)];
        let mate = max_weight_matching(4, &edges);
        assert_eq!(mate, vec![None, None, Some(3), Some(2)]);
    }

    #[test]
    fn large_random_graph_terminates_and_is_valid() {
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 60;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.random_bool(0.3) {
                    edges.push(we(u, v, rng.random_range(1..1000)));
                }
            }
        }
        let mate = max_weight_matching(n, &edges);
        let matched = mate.iter().flatten().count();
        assert!(
            matched >= n / 2,
            "dense random graph should match most vertices"
        );
        for (v, &m) in mate.iter().enumerate() {
            if let Some(w) = m {
                assert_eq!(mate[w as usize], Some(v as u32));
            }
        }
    }
}

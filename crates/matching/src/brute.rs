//! Exponential-time exact optima for tiny instances — the ground truth that
//! the blossom implementation and the heuristics are tested against.

use crate::WeightedEdge;
use dcn_topology::Pair;

/// Exhaustive maximum-weight b-matching by branching over every edge
/// (include/exclude). Only positive-weight edges can help, but zero/negative
/// edges are still considered excluded implicitly. Feasible for
/// `edges.len()` ≲ 24.
///
/// Returns `(best_weight, best_edge_set)`.
pub fn brute_force_max_weight_b_matching(
    n: usize,
    edges: &[WeightedEdge],
    b: usize,
) -> (i64, Vec<Pair>) {
    assert!(b >= 1);
    assert!(edges.len() <= 24, "brute force limited to 24 edges");
    let mut degree = vec![0usize; n];
    let mut best = (0i64, Vec::new());
    let mut current: Vec<Pair> = Vec::new();

    fn rec(
        idx: usize,
        weight: i64,
        edges: &[WeightedEdge],
        b: usize,
        degree: &mut Vec<usize>,
        current: &mut Vec<Pair>,
        best: &mut (i64, Vec<Pair>),
    ) {
        if idx == edges.len() {
            if weight > best.0 {
                *best = (weight, current.clone());
            }
            return;
        }
        // Upper bound prune: even taking every remaining positive edge
        // cannot beat the incumbent.
        let remaining: i64 = edges[idx..].iter().map(|e| e.weight.max(0)).sum();
        if weight + remaining <= best.0 {
            return;
        }
        let e = edges[idx];
        // Branch 1: include (if feasible and useful).
        if e.weight > 0 && degree[e.u as usize] < b && degree[e.v as usize] < b {
            degree[e.u as usize] += 1;
            degree[e.v as usize] += 1;
            current.push(Pair::new(e.u, e.v));
            rec(idx + 1, weight + e.weight, edges, b, degree, current, best);
            current.pop();
            degree[e.u as usize] -= 1;
            degree[e.v as usize] -= 1;
        }
        // Branch 2: exclude.
        rec(idx + 1, weight, edges, b, degree, current, best);
    }

    rec(0, 0, edges, b, &mut degree, &mut current, &mut best);
    best
}

/// Exhaustive maximum-weight (1-)matching.
pub fn brute_force_max_weight_matching(n: usize, edges: &[WeightedEdge]) -> (i64, Vec<Pair>) {
    brute_force_max_weight_b_matching(n, edges, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmatching::is_valid_b_matching;

    fn we(u: u32, v: u32, w: i64) -> WeightedEdge {
        WeightedEdge::new(u, v, w)
    }

    #[test]
    fn triangle() {
        // Triangle with weights 5, 4, 3: best 1-matching takes the single
        // heaviest edge (any two edges share a node).
        let edges = [we(0, 1, 5), we(1, 2, 4), we(0, 2, 3)];
        let (w, m) = brute_force_max_weight_matching(3, &edges);
        assert_eq!(w, 5);
        assert_eq!(m, vec![Pair::new(0, 1)]);
    }

    #[test]
    fn path_prefers_outer_edges() {
        let edges = [we(0, 1, 3), we(1, 2, 4), we(2, 3, 3)];
        let (w, m) = brute_force_max_weight_matching(4, &edges);
        assert_eq!(w, 6);
        assert_eq!(m.len(), 2);
        assert!(is_valid_b_matching(&m, 1));
    }

    #[test]
    fn b_two_takes_more() {
        let edges = [we(0, 1, 3), we(1, 2, 4), we(2, 3, 3)];
        let (w, m) = brute_force_max_weight_b_matching(4, &edges, 2);
        assert_eq!(w, 10, "with b=2 the whole path fits");
        assert!(is_valid_b_matching(&m, 2));
    }

    #[test]
    fn negative_weights_excluded() {
        let (w, m) = brute_force_max_weight_matching(4, &[we(0, 1, -3), we(2, 3, 2)]);
        assert_eq!(w, 2);
        assert_eq!(m, vec![Pair::new(2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let (w, m) = brute_force_max_weight_matching(5, &[]);
        assert_eq!(w, 0);
        assert!(m.is_empty());
    }
}

//! Side-by-side equivalence of the flat intrusive LRU
//! ([`LruBMatching`]) against the historical stamp/B-tree recency
//! ([`BTreeRecencyMatching`]): random hit/miss/insert/evict/remove
//! sequences must produce identical recency orders at **both** endpoints
//! of every edge, identical LRU victims at every rack, and identical
//! matchings — including when the reference's stamp clock starts near the
//! top of the `u64` range (where a stamp-based design is one overflow away
//! from reordering, and the stamp-free list by construction is not).

use dcn_matching::recency::{BTreeRecencyMatching, LruBMatching, RecencyMatching};
use dcn_topology::{NodeId, Pair};
use proptest::prelude::*;

/// One step of the replayed workload.
#[derive(Clone, Debug)]
enum Op {
    /// Touch the pair if matched; otherwise insert it, evicting the LRU
    /// incident edge at any full endpoint first (BMA's buy path).
    Request(Pair),
    /// Remove the pair if present (BMA's counter-driven removal).
    Remove(Pair),
    /// Remove the LRU victim at a rack, if any (a bare eviction).
    EvictAt(NodeId),
}

fn pair_strategy(n: u32) -> impl Strategy<Value = Pair> {
    (0..n, 0..n - 1).prop_map(move |(a, b)| {
        let b = if b >= a { b + 1 } else { b };
        Pair::new(a, b)
    })
}

fn op_strategy(n: u32) -> impl Strategy<Value = Op> {
    // The vendored prop_oneof! chooses uniformly (no weight syntax);
    // repeating the Request arm biases the mix toward the hot path.
    prop_oneof![
        pair_strategy(n).prop_map(Op::Request),
        pair_strategy(n).prop_map(Op::Request),
        pair_strategy(n).prop_map(Op::Request),
        pair_strategy(n).prop_map(Op::Request),
        pair_strategy(n).prop_map(Op::Request),
        pair_strategy(n).prop_map(Op::Request),
        pair_strategy(n).prop_map(Op::Remove),
        (0..n).prop_map(Op::EvictAt),
    ]
}

/// Applies `op` identically to one structure, using only the
/// [`RecencyMatching`] contract (so both implementations run the exact
/// same decision sequence).
fn apply<M: RecencyMatching>(m: &mut M, op: &Op) {
    match *op {
        Op::Request(pair) => {
            if m.touch_hit(pair) {
                return;
            }
            for node in [pair.lo(), pair.hi()] {
                if m.matching().degree(node) >= m.matching().cap() {
                    let victim = m.lru_edge(node).expect("full node has a victim");
                    assert!(m.remove(victim));
                }
            }
            m.insert_mru(pair);
        }
        Op::Remove(pair) => {
            m.remove(pair);
        }
        Op::EvictAt(v) => {
            if let Some(victim) = m.lru_edge(v) {
                assert!(m.remove(victim));
            }
        }
    }
}

fn assert_equivalent(flat: &LruBMatching, tree: &BTreeRecencyMatching, n: u32, step: usize) {
    assert_eq!(
        flat.matching().len(),
        tree.matching().len(),
        "matching size diverged at step {step}"
    );
    for v in 0..n {
        assert_eq!(
            flat.lru_edge(v),
            tree.lru_edge(v),
            "LRU victim diverged at rack {v}, step {step}"
        );
        assert_eq!(
            flat.recency_order(v),
            tree.recency_order(v),
            "recency order diverged at rack {v}, step {step}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flat_lru_replays_btree_recency_exactly(
        ops in prop::collection::vec(op_strategy(9), 1..400),
        b in 1usize..4,
    ) {
        let n = 9u32;
        let mut flat = LruBMatching::new(n as usize, b);
        let mut tree = BTreeRecencyMatching::new(n as usize, b);
        for (step, op) in ops.iter().enumerate() {
            apply(&mut flat, op);
            apply(&mut tree, op);
            assert_equivalent(&flat, &tree, n, step);
        }
        flat.assert_valid();
    }

    #[test]
    fn equivalence_holds_at_large_stamp_clocks(
        ops in prop::collection::vec(op_strategy(6), 1..200),
        // Start the reference's clock close to (but safely below) the
        // overflow bound: stamps land in [2^63, u64::MAX), the regime where
        // any accidental narrowing or wrap in stamp handling would reorder.
        clock_offset in 0u64..1_000_000,
    ) {
        let n = 6u32;
        let start = (1u64 << 63) + clock_offset;
        let mut flat = LruBMatching::new(n as usize, 2);
        let mut tree = BTreeRecencyMatching::with_start_clock(n as usize, 2, start);
        for (step, op) in ops.iter().enumerate() {
            apply(&mut flat, op);
            apply(&mut tree, op);
            assert_equivalent(&flat, &tree, n, step);
        }
    }
}

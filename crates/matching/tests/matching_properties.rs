//! Property tests for the matching substrate: the blossom matcher against
//! ground truth, structural invariants of every matcher, and the coloring
//! pipeline end to end.

use dcn_matching::blossom::max_weight_matching_pairs;
use dcn_matching::bmatching::{is_valid_b_matching, BMatching};
use dcn_matching::brute::brute_force_max_weight_b_matching;
use dcn_matching::coloring::{assign_switches, validate_coloring};
use dcn_matching::greedy::{greedy_b_matching, matching_weight};
use dcn_matching::repeated::repeated_mwm_b_matching;
use dcn_matching::WeightedEdge;
use dcn_topology::Pair;
use proptest::prelude::*;

/// Random simple weighted graph on up to `n` vertices.
fn weighted_graph(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<WeightedEdge>> {
    prop::collection::vec((0..n, 0..n - 1, 1i64..100), 0..max_edges).prop_map(|raw| {
        let mut seen = std::collections::HashSet::new();
        raw.into_iter()
            .map(|(a, b, w)| {
                let b = if b >= a { b + 1 } else { b };
                (a.min(b), a.max(b), w)
            })
            .filter(|&(a, b, _)| seen.insert((a, b)))
            .map(|(a, b, w)| WeightedEdge::new(a, b, w))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blossom_optimal_and_valid(edges in weighted_graph(8, 20)) {
        prop_assume!(!edges.is_empty());
        let pairs = max_weight_matching_pairs(8, &edges);
        prop_assert!(is_valid_b_matching(&pairs, 1), "blossom output is not a matching");
        let got = matching_weight(&pairs, &edges);
        let (opt, _) = brute_force_max_weight_b_matching(8, &edges, 1);
        prop_assert_eq!(got, opt, "blossom {} != brute force {}", got, opt);
    }

    #[test]
    fn greedy_half_approximation(edges in weighted_graph(9, 20), b in 1usize..4) {
        let m = greedy_b_matching(9, &edges, b);
        prop_assert!(is_valid_b_matching(&m, b));
        let got = matching_weight(&m, &edges);
        let (opt, _) = brute_force_max_weight_b_matching(9, &edges, b);
        prop_assert!(2 * got >= opt, "greedy {} below half of optimum {}", got, opt);
    }

    #[test]
    fn repeated_mwm_valid_and_bounded(edges in weighted_graph(9, 20), b in 1usize..4) {
        let m = repeated_mwm_b_matching(9, &edges, b);
        prop_assert!(is_valid_b_matching(&m, b));
        let got = matching_weight(&m, &edges);
        let (opt, _) = brute_force_max_weight_b_matching(9, &edges, b);
        prop_assert!(got <= opt);
        // Round 1 alone is an exact matching ≥ opt/b.
        prop_assert!((b as i64) * got >= opt, "{} rounds yielded {} < opt/b of {}", b, got, opt);
    }

    #[test]
    fn coloring_pipeline_on_scheduler_like_matchings(
        edges in prop::collection::vec((0u32..16, 0u32..15), 0..40),
        b in 1usize..5,
    ) {
        // Build a b-matching greedily from the raw pairs.
        let mut m = BMatching::new(16, b);
        for (a, raw_b) in edges {
            let v = if raw_b >= a { raw_b + 1 } else { raw_b };
            let _ = m.try_insert(Pair::new(a, v));
        }
        let pairs: Vec<Pair> = m.edges().collect();
        let switches = assign_switches(16, &pairs);
        prop_assert!(switches.len() <= b + 1, "Vizing bound violated");
        let colors: Vec<u32> = {
            // Rebuild the color list from the switch assignment.
            let mut map = std::collections::HashMap::new();
            for (c, sw) in switches.iter().enumerate() {
                for e in sw {
                    map.insert(*e, c as u32);
                }
            }
            pairs.iter().map(|e| map[e]).collect()
        };
        prop_assert!(validate_coloring(&pairs, &colors).is_ok());
        for sw in &switches {
            prop_assert!(is_valid_b_matching(sw, 1), "switch carries a non-matching");
        }
    }

    #[test]
    fn bmatching_model_based(ops in prop::collection::vec((0u32..10, 0u32..9, any::<bool>()), 1..200)) {
        // Model: a reference HashSet + degree map mirrors BMatching.
        let b = 2;
        let mut m = BMatching::new(10, b);
        let mut reference: std::collections::HashSet<Pair> = Default::default();
        let mut degree = [0usize; 10];
        for (a, raw, insert) in ops {
            let v = if raw >= a { raw + 1 } else { raw };
            let pair = Pair::new(a, v);
            if insert {
                let expect = !reference.contains(&pair)
                    && degree[pair.lo() as usize] < b
                    && degree[pair.hi() as usize] < b;
                prop_assert_eq!(m.try_insert(pair), expect);
                if expect {
                    reference.insert(pair);
                    degree[pair.lo() as usize] += 1;
                    degree[pair.hi() as usize] += 1;
                }
            } else {
                let expect = reference.remove(&pair);
                if expect {
                    degree[pair.lo() as usize] -= 1;
                    degree[pair.hi() as usize] -= 1;
                }
                prop_assert_eq!(m.remove(pair), expect);
            }
            prop_assert_eq!(m.len(), reference.len());
        }
        m.assert_valid();
        for v in 0..10u32 {
            prop_assert_eq!(m.degree(v), degree[v as usize]);
        }
    }
}

//! Stream/materialized equivalence: for every generator the lazy
//! [`RequestSource`] must yield exactly the sequence its `*_trace`
//! counterpart materializes (element for element, for several seeds), and
//! `reset()` must replay identically. This pins down the refactor's hard
//! requirement that the seeded xoshiro256++ draws are byte-identical
//! between the eager and the streaming path.

use dcn_topology::Pair;
use dcn_traces::source::{RequestSource, TraceSpec};
use dcn_traces::{
    facebook_cluster_source, facebook_cluster_trace, facebook_source, facebook_trace,
    hotspot_source, hotspot_trace, matrix_source, matrix_trace, microsoft_source, microsoft_trace,
    permutation_source, permutation_trace, sequence_source, sequence_trace,
    star_round_robin_blocks, star_round_robin_source, star_uniform_blocks, star_uniform_source,
    uniform_source, uniform_trace, zipf_pair_source, zipf_pair_trace, DemandMatrix,
    FacebookCluster, FacebookParams, Genome, MatrixSequence, MicrosoftParams, Segment, Trace,
};
use proptest::prelude::*;

const SEEDS: [u64; 4] = [0, 1, 7, 0xDEAD_BEEF];

/// Streams `source` and checks it equals `trace` element-for-element, with
/// consistent bookkeeping (`len`, `remaining`, `name`, `num_racks`).
fn assert_stream_equals_trace<S: RequestSource>(mut source: S, trace: &Trace) {
    assert_eq!(source.len(), trace.len());
    assert_eq!(source.num_racks(), trace.num_racks);
    assert_eq!(source.name(), trace.name);
    for (i, &expected) in trace.requests.iter().enumerate() {
        assert_eq!(source.remaining(), trace.len() - i);
        let got = source.next_request().expect("stream ends early");
        assert_eq!(got, expected, "divergence at position {i}");
    }
    assert_eq!(source.remaining(), 0);
    assert!(source.next_request().is_none(), "stream runs long");
    // And materialize() reproduces the trace wholesale.
    assert_eq!(&source.materialize(), trace);
}

#[test]
fn uniform_stream_equals_trace() {
    for seed in SEEDS {
        assert_stream_equals_trace(
            uniform_source(13, 2_000, seed),
            &uniform_trace(13, 2_000, seed),
        );
    }
}

#[test]
fn permutation_stream_equals_trace() {
    for seed in SEEDS {
        assert_stream_equals_trace(
            permutation_source(12, 1_000, seed),
            &permutation_trace(12, 1_000, seed),
        );
    }
}

#[test]
fn hotspot_stream_equals_trace() {
    for seed in SEEDS {
        assert_stream_equals_trace(
            hotspot_source(20, 2_000, 4, 0.8, seed),
            &hotspot_trace(20, 2_000, 4, 0.8, seed),
        );
    }
}

#[test]
fn zipf_stream_equals_trace() {
    for seed in SEEDS {
        assert_stream_equals_trace(
            zipf_pair_source(15, 2_000, 1.2, seed),
            &zipf_pair_trace(15, 2_000, 1.2, seed),
        );
    }
}

#[test]
fn facebook_presets_stream_equals_trace() {
    // Hadoop exercises the phase machinery (phase_len < trace length).
    for cluster in [
        FacebookCluster::Database,
        FacebookCluster::WebService,
        FacebookCluster::Hadoop,
    ] {
        for seed in SEEDS {
            assert_stream_equals_trace(
                facebook_cluster_source(cluster, 30, 25_000, seed),
                &facebook_cluster_trace(cluster, 30, 25_000, seed),
            );
        }
    }
}

#[test]
fn facebook_custom_params_stream_equals_trace() {
    let params = FacebookParams {
        src_skew: 0.7,
        dst_skew: 1.3,
        p_burst: 0.5,
        working_set: 64,
        phase_len: 500,
        phase_pairs: 10,
        p_phase: 0.4,
    };
    for seed in SEEDS {
        assert_stream_equals_trace(
            facebook_source(25, 5_000, params, seed),
            &facebook_trace(25, 5_000, params, seed),
        );
    }
}

#[test]
fn microsoft_stream_equals_trace() {
    for seed in SEEDS {
        assert_stream_equals_trace(
            microsoft_source(20, 5_000, MicrosoftParams::default(), seed),
            &microsoft_trace(20, 5_000, MicrosoftParams::default(), seed),
        );
    }
}

#[test]
fn matrix_stream_equals_trace() {
    let matrices = [
        DemandMatrix::uniform(14),
        DemandMatrix::zipf_pairs(14, 1.3, 2),
        DemandMatrix::hotspot(14, 4, 0.8),
        DemandMatrix::microsoft(14, MicrosoftParams::default(), 2),
    ];
    for matrix in &matrices {
        for seed in SEEDS {
            assert_stream_equals_trace(
                matrix_source(matrix, 2_000, seed),
                &matrix_trace(matrix, 2_000, seed),
            );
        }
    }
}

#[test]
fn sequence_stream_equals_trace() {
    let sequences = [
        MatrixSequence::zipf_switching(12, 3, 700, 1.2, 1),
        MatrixSequence::drifting(
            &DemandMatrix::uniform(12).normalized(),
            &DemandMatrix::zipf_pairs(12, 1.5, 3).normalized(),
            2_100,
            4,
        ),
    ];
    for sequence in &sequences {
        for seed in SEEDS {
            assert_stream_equals_trace(
                sequence_source(sequence, seed),
                &sequence_trace(sequence, seed),
            );
        }
    }
}

#[test]
fn star_nemeses_stream_equals_trace() {
    for seed in SEEDS {
        assert_stream_equals_trace(
            star_uniform_source(6, 5, 400, seed),
            &star_uniform_blocks(6, 5, 400, seed),
        );
    }
    assert_stream_equals_trace(
        star_round_robin_source(5, 3, 200),
        &star_round_robin_blocks(5, 3, 200),
    );
}

#[test]
fn trace_spec_source_equals_trace_spec_as_trace() {
    let specs = [
        TraceSpec::Uniform {
            num_racks: 11,
            len: 700,
            seed: 3,
        },
        TraceSpec::Permutation {
            num_racks: 10,
            len: 500,
            seed: 4,
        },
        TraceSpec::Hotspot {
            num_racks: 16,
            len: 600,
            num_hot: 4,
            p_hot: 0.75,
            seed: 5,
        },
        TraceSpec::Zipf {
            num_racks: 9,
            len: 800,
            exponent: 1.4,
            seed: 6,
        },
        TraceSpec::Facebook {
            cluster: FacebookCluster::Hadoop,
            num_racks: 12,
            len: 900,
            seed: 7,
        },
        TraceSpec::Microsoft {
            num_racks: 8,
            len: 400,
            params: MicrosoftParams::default(),
            seed: 8,
        },
        TraceSpec::StarUniform {
            spokes: 5,
            alpha: 4,
            num_blocks: 50,
            seed: 9,
        },
        TraceSpec::StarRoundRobin {
            spokes: 4,
            alpha: 2,
            num_blocks: 30,
        },
        TraceSpec::matrix(DemandMatrix::zipf_pairs(10, 1.2, 10), 600, 10),
        TraceSpec::sequence(MatrixSequence::zipf_switching(9, 2, 300, 1.1, 11), 11),
    ];
    for spec in specs {
        let trace = spec.as_trace().into_owned();
        let mut source = spec.source();
        assert_eq!(source.len(), trace.len(), "{spec:?}");
        let streamed: Vec<_> = std::iter::from_fn(|| source.next_request()).collect();
        assert_eq!(streamed, trace.requests, "{spec:?}");
    }
}

/// One boxed source per kernel family (synthetic, alias-table, working-set,
/// block, matrix, sequence), so batch-path tests sweep every `emit_batch`
/// override plus the default loop.
fn all_kernel_sources(len: usize, seed: u64) -> Vec<Box<dyn RequestSource>> {
    vec![
        Box::new(uniform_source(8, len, seed)),
        Box::new(permutation_source(8, len, seed)),
        Box::new(hotspot_source(8, len, 3, 0.7, seed)),
        Box::new(zipf_pair_source(8, len, 1.1, seed)),
        Box::new(facebook_cluster_source(
            FacebookCluster::Hadoop,
            10,
            len,
            seed,
        )),
        Box::new(microsoft_source(8, len, MicrosoftParams::default(), seed)),
        Box::new(star_uniform_source(4, 3, len.div_ceil(3), seed)),
        Box::new(star_round_robin_source(4, 3, len.div_ceil(3))),
        Box::new(matrix_source(
            &DemandMatrix::zipf_pairs(8, 1.2, seed),
            len,
            seed,
        )),
        Box::new(sequence_source(
            &MatrixSequence::zipf_switching(8, 3, len.div_ceil(3).max(1), 1.1, seed),
            seed,
        )),
    ]
}

/// Drains `source` via `fill`, chunk sizes cycling through `schedule`.
fn drain_with_schedule(source: &mut dyn RequestSource, schedule: &[usize]) -> Vec<Pair> {
    let max = schedule.iter().copied().max().unwrap_or(1).max(1);
    let mut buf = vec![Pair::new(0, 1); max];
    let mut out = Vec::with_capacity(source.len());
    let mut k = 0;
    while source.remaining() > 0 {
        let want = schedule[k % schedule.len()].max(1);
        k += 1;
        let n = source.fill(&mut buf[..want]);
        out.extend_from_slice(&buf[..n]);
        if n == 0 {
            break;
        }
    }
    out
}

/// Proptest strategy over valid [`Segment`]s for an 8-rack genome,
/// covering all five segment families with their full parameter ranges.
/// Lives here (not in `dcn-adversary`) so the trace crate's stream
/// contract is pinned without a dependency on the search crate.
fn segment_strategy() -> impl Strategy<Value = Segment> {
    const N: usize = 8;
    prop_oneof![
        (1usize..120, any::<u64>()).prop_map(|(len, seed)| Segment::Uniform { len, seed }),
        (
            1usize..120,
            2usize..=N,
            0.0..1.0f64,
            0usize..N,
            any::<u64>()
        )
            .prop_map(|(len, num_hot, p_hot, offset, seed)| Segment::Hotspot {
                len,
                num_hot,
                p_hot,
                offset,
                seed,
            }),
        (1usize..120, any::<u64>()).prop_map(|(len, seed)| Segment::Permutation { len, seed }),
        (2usize..N, 1usize..12, 1usize..12, any::<u64>()).prop_map(
            |(spokes, block_len, blocks, seed)| Segment::StarBlocks {
                spokes,
                block_len,
                blocks,
                seed,
            }
        ),
        (1usize..120, 0.0..4.0f64, 0.0..4.0f64, any::<u64>()).prop_map(
            |(len, s_start, s_end, seed)| Segment::ZipfRamp {
                len,
                s_start,
                s_end,
                seed,
            }
        ),
    ]
}

/// Arbitrary valid genomes: 1–5 segments over 8 racks.
fn genome_strategy() -> impl Strategy<Value = Genome> {
    proptest::collection::vec(segment_strategy(), 1..6)
        .prop_map(|segments| Genome::new(8, segments))
}

#[test]
fn genome_stream_equals_trace() {
    // A genome exercising every segment family (and hence every segment
    // kernel's emit path) against the materialized counterpart, with the
    // usual bookkeeping checks.
    for seed in SEEDS {
        let g = Genome::new(
            8,
            vec![
                Segment::Uniform { len: 40, seed },
                Segment::Hotspot {
                    len: 50,
                    num_hot: 3,
                    p_hot: 0.85,
                    offset: 6,
                    seed,
                },
                Segment::Permutation { len: 24, seed },
                Segment::StarBlocks {
                    spokes: 4,
                    block_len: 6,
                    blocks: 8,
                    seed,
                },
                Segment::ZipfRamp {
                    len: 30,
                    s_start: 0.3,
                    s_end: 2.2,
                    seed,
                },
            ],
        );
        assert_stream_equals_trace(g.source(), &g.as_trace());
    }
}

proptest! {
    /// `fill` with an arbitrary batch-size schedule replays the exact
    /// `next_request` sequence for every kernel — the draw-for-draw batch
    /// contract the simulator's chunked loop relies on — and the replay
    /// still holds after a mid-stream `reset()`.
    #[test]
    fn fill_schedules_replay_next_request(
        seed in any::<u64>(),
        len in 1usize..500,
        schedule in proptest::collection::vec(1usize..97, 1..8),
        cut in 0usize..500,
    ) {
        for mut source in all_kernel_sources(len, seed) {
            let expected: Vec<Pair> = std::iter::from_fn(|| source.next_request()).collect();
            // Batched drain from a fresh start.
            source.reset();
            let batched = drain_with_schedule(source.as_mut(), &schedule);
            prop_assert_eq!(&batched, &expected, "schedule {:?}", &schedule);
            // Interrupt a batched replay with reset(): the next batched
            // drain must still reproduce the full sequence.
            source.reset();
            let mut buf = vec![Pair::new(0, 1); 97];
            let mut taken = 0;
            while taken < cut.min(source.len()) {
                let want = (cut - taken).min(buf.len()).max(1);
                let n = source.fill(&mut buf[..want]);
                taken += n;
                if n == 0 { break; }
            }
            source.reset();
            let after_reset = drain_with_schedule(source.as_mut(), &schedule);
            prop_assert_eq!(&after_reset, &expected, "reset mid-batch");
            // And mixing APIs mid-stream stays on the same sequence.
            source.reset();
            let mut mixed = Vec::with_capacity(source.len());
            while source.remaining() > 0 {
                let n = source.fill(&mut buf[..schedule[mixed.len() % schedule.len()]]);
                mixed.extend_from_slice(&buf[..n]);
                if let Some(p) = source.next_request() {
                    mixed.push(p);
                }
            }
            prop_assert_eq!(&mixed, &expected, "fill/next_request interleave");
        }
    }

    /// Genome-lowered sources obey the same contract as every built-in
    /// kernel: `fill` under an arbitrary batch schedule replays the exact
    /// `next_request` sequence, `reset()` replays identically from any
    /// interrupt position, and the source emits exactly `len()` requests —
    /// for arbitrary valid genomes, not just the hand-picked sample.
    #[test]
    fn genome_sources_replay_under_arbitrary_batch_schedules(
        genome in genome_strategy(),
        schedule in proptest::collection::vec(1usize..97, 1..8),
        cut in 0usize..700,
    ) {
        let mut source = genome.source();
        prop_assert_eq!(source.len(), genome.len());
        prop_assert_eq!(source.num_racks(), genome.num_racks);
        let expected: Vec<Pair> = std::iter::from_fn(|| source.next_request()).collect();
        prop_assert_eq!(
            expected.len(),
            genome.len(),
            "emitted count diverged for {}",
            genome.to_json()
        );
        prop_assert!(
            expected.iter().all(|p| (p.hi() as usize) < genome.num_racks),
            "rack out of range for {}",
            genome.to_json()
        );
        // Batched drain from a fresh start replays the streamed sequence,
        // including across segment boundaries mid-chunk.
        source.reset();
        let batched = drain_with_schedule(&mut source, &schedule);
        prop_assert_eq!(&batched, &expected, "schedule {:?} on {}", &schedule, genome.to_json());
        // reset() from an arbitrary interrupt position replays identically.
        source.reset();
        for _ in 0..cut.min(genome.len()) {
            source.next_request();
        }
        source.reset();
        let after_cut = drain_with_schedule(&mut source, &schedule);
        prop_assert_eq!(&after_cut, &expected, "reset mid-stream on {}", genome.to_json());
    }

    /// reset() replays the identical sequence, from any interrupt position,
    /// for the stateful generators (working set, phases, blocks).
    #[test]
    fn reset_replays_identically(seed in any::<u64>(), cut in 0usize..600, len in 1usize..600) {
        let sources: Vec<Box<dyn RequestSource>> = vec![
            Box::new(uniform_source(8, len, seed)),
            Box::new(zipf_pair_source(8, len, 1.1, seed)),
            Box::new(facebook_cluster_source(FacebookCluster::Hadoop, 10, len, seed)),
            Box::new(star_uniform_source(4, 3, len.div_ceil(3), seed)),
            Box::new(matrix_source(&DemandMatrix::zipf_pairs(8, 1.2, seed), len, seed)),
            Box::new(sequence_source(
                // Phase length scales with len so cuts land in different
                // phases (the stateful part of SequenceKernel).
                &MatrixSequence::zipf_switching(8, 3, len.div_ceil(3).max(1), 1.1, seed),
                seed,
            )),
        ];
        for mut source in sources {
            let full: Vec<_> = std::iter::from_fn(|| source.next_request()).collect();
            prop_assert_eq!(full.len(), source.len());
            // Replay after exhaustion.
            source.reset();
            let replay: Vec<_> = std::iter::from_fn(|| source.next_request()).collect();
            prop_assert_eq!(&full, &replay);
            // Replay after an arbitrary partial read.
            source.reset();
            for _ in 0..cut.min(source.len()) {
                source.next_request();
            }
            source.reset();
            let after_cut: Vec<_> = std::iter::from_fn(|| source.next_request()).collect();
            prop_assert_eq!(&full, &after_cut);
        }
    }
}

//! Weighted sampling: Walker's alias method and Zipf weight vectors.
//!
//! Trace generation samples millions of requests from skewed categorical
//! distributions; the alias method gives O(1) per sample after O(n) setup.

use rand::rngs::SmallRng;
use rand::RngExt;

/// Walker alias table over categories `0..n` with the given non-negative
/// weights (not all zero).
///
/// ```
/// use dcn_traces::AliasTable;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let table = AliasTable::new(&[0.0, 3.0, 1.0]);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let draw = table.sample(&mut rng);
/// assert!(draw == 1 || draw == 2, "zero-weight category is never drawn");
/// ```
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table in O(n).
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one category");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative, not all zero"
        );
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: everything remaining gets probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category in O(1).
    #[inline]
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        let i = rng.random_range(0..self.prob.len());
        if rng.random_range(0.0..1.0f64) < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

// The single definition lives in dcn-util, shared with dcn-demand's matrix
// constructors; re-exported here to keep the historical path.
pub use dcn_util::zipf_weights;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matches_expected_frequencies() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        const N: usize = 200_000;
        for _ in 0..N {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        let total_w: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = N as f64 * w / total_w;
            let sd = (expected * (1.0 - w / total_w)).sqrt();
            assert!(
                (counts[i] as f64 - expected).abs() < 6.0 * sd,
                "category {i}: {} vs expected {expected}",
                counts[i]
            );
        }
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_category() {
        let table = AliasTable::new(&[42.0]);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(table.sample(&mut rng), 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn zipf_shapes() {
        let u = zipf_weights(4, 0.0);
        assert!(u.iter().all(|&w| (w - 1.0).abs() < 1e-12));
        let z = zipf_weights(4, 1.0);
        assert!((z[0] - 1.0).abs() < 1e-12);
        assert!((z[3] - 0.25).abs() < 1e-12);
        // Monotone decreasing.
        assert!(z.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }
}

//! Adversarial trace **genomes**: typed segment sequences that lower
//! deterministically to a [`RequestSource`].
//!
//! A genome is the unit the coverage-guided adversarial search
//! (`dcn-adversary`) mutates: a rack count plus a sequence of typed
//! [`Segment`]s — uniform noise, movable hotspots, permutation splices,
//! §2.4 star-nemesis blocks and Zipf-skew ramps. Each segment carries its
//! **own** seed and draws from its **own** derived RNG stream, so mutating
//! one segment (reseeding it, perturbing a parameter) never perturbs the
//! requests any other segment emits — the search locality that makes
//! pool-based mutation productive.
//!
//! Genomes serialize through `dcn-util::json` ([`Genome::to_json`] /
//! [`Genome::from_json`]), so every discovered adversarial input is a
//! committed, replayable artifact: the regression corpus under
//! `crates/adversary/corpus/` is exactly these JSON documents.

use crate::sampler::{zipf_weights, AliasTable};
use crate::source::{RequestSource, SeededSource, SourceKernel};
use crate::trace::Trace;
use dcn_topology::Pair;
use dcn_util::json::{parse_json, to_json_string, JsonValue};
use dcn_util::rngx::{derive_seed, shuffle};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;

/// Number of interpolation steps a [`Segment::ZipfRamp`] quantizes its
/// exponent ramp into (one alias table per step).
pub const ZIPF_RAMP_STEPS: usize = 8;

/// One typed segment of a trace genome. `len()` requests are emitted from
/// the segment's own seeded RNG stream.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub enum Segment {
    /// Uniform i.i.d. distinct pairs over all racks.
    Uniform {
        /// Requests emitted.
        len: usize,
        /// Segment seed.
        seed: u64,
    },
    /// Hotspot traffic whose hot set can *move*: with probability `p_hot`
    /// the pair is drawn among the `num_hot` racks starting at rack
    /// `offset` (wrapping), otherwise uniformly over all racks.
    Hotspot {
        /// Requests emitted.
        len: usize,
        /// Hot-set size (≥ 2).
        num_hot: usize,
        /// Probability a request stays inside the hot set.
        p_hot: f64,
        /// First hot rack (wraps modulo the rack count) — the "hotspot
        /// move" lever.
        offset: usize,
        /// Segment seed.
        seed: u64,
    },
    /// A fixed random perfect matching, cycled — the permutation splice.
    Permutation {
        /// Requests emitted.
        len: usize,
        /// Segment seed (selects the matching).
        seed: u64,
    },
    /// §2.4 star-nemesis blocks: `blocks` runs of `block_len` requests,
    /// each run pinned to the pair `{hub 0, random spoke in 1..=spokes}`.
    StarBlocks {
        /// Spoke universe (hub is rack 0).
        spokes: usize,
        /// Requests per block (the α of the paging reduction).
        block_len: usize,
        /// Number of blocks.
        blocks: usize,
        /// Segment seed.
        seed: u64,
    },
    /// Zipf-ranked pair popularity whose exponent ramps linearly from
    /// `s_start` to `s_end` over the segment (quantized into
    /// [`ZIPF_RAMP_STEPS`] alias tables).
    ZipfRamp {
        /// Requests emitted.
        len: usize,
        /// Exponent at the segment start.
        s_start: f64,
        /// Exponent at the segment end.
        s_end: f64,
        /// Segment seed.
        seed: u64,
    },
}

impl Segment {
    /// Requests this segment emits.
    pub fn len(&self) -> usize {
        match *self {
            Segment::Uniform { len, .. }
            | Segment::Hotspot { len, .. }
            | Segment::Permutation { len, .. }
            | Segment::ZipfRamp { len, .. } => len,
            Segment::StarBlocks {
                block_len, blocks, ..
            } => block_len * blocks,
        }
    }

    /// Whether the segment emits nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The segment's seed.
    pub fn seed(&self) -> u64 {
        match *self {
            Segment::Uniform { seed, .. }
            | Segment::Hotspot { seed, .. }
            | Segment::Permutation { seed, .. }
            | Segment::StarBlocks { seed, .. }
            | Segment::ZipfRamp { seed, .. } => seed,
        }
    }

    /// Replaces the segment's seed (the "reseed segment" mutation).
    pub fn reseed(&mut self, new_seed: u64) {
        match self {
            Segment::Uniform { seed, .. }
            | Segment::Hotspot { seed, .. }
            | Segment::Permutation { seed, .. }
            | Segment::StarBlocks { seed, .. }
            | Segment::ZipfRamp { seed, .. } => *seed = new_seed,
        }
    }

    /// Structural validity against a rack count.
    fn validate(&self, num_racks: usize) -> Result<(), String> {
        let ok_len = |len: usize| {
            if len == 0 {
                Err("segment length must be >= 1".to_string())
            } else {
                Ok(())
            }
        };
        match *self {
            Segment::Uniform { len, .. } | Segment::Permutation { len, .. } => ok_len(len),
            Segment::Hotspot {
                len,
                num_hot,
                p_hot,
                offset,
                ..
            } => {
                ok_len(len)?;
                if num_hot < 2 || num_hot > num_racks {
                    return Err(format!("hotspot num_hot {num_hot} not in 2..={num_racks}"));
                }
                if !(0.0..=1.0).contains(&p_hot) {
                    return Err(format!("hotspot p_hot {p_hot} not in [0, 1]"));
                }
                if offset >= num_racks {
                    return Err(format!("hotspot offset {offset} >= num_racks {num_racks}"));
                }
                Ok(())
            }
            Segment::StarBlocks {
                spokes,
                block_len,
                blocks,
                ..
            } => {
                if spokes < 2 || spokes >= num_racks {
                    return Err(format!("star spokes {spokes} not in 2..{num_racks}"));
                }
                if block_len == 0 || blocks == 0 {
                    return Err("star blocks need block_len >= 1 and blocks >= 1".to_string());
                }
                Ok(())
            }
            Segment::ZipfRamp {
                len,
                s_start,
                s_end,
                ..
            } => {
                ok_len(len)?;
                for s in [s_start, s_end] {
                    if !s.is_finite() || !(0.0..=4.0).contains(&s) {
                        return Err(format!("zipf exponent {s} not in [0, 4]"));
                    }
                }
                Ok(())
            }
        }
    }
}

/// An adversarial trace genome: a rack count plus a segment sequence.
///
/// Lower it with [`Genome::source`]; serialize with [`Genome::to_json`] and
/// replay with [`Genome::from_json`] — the lowered stream is a pure
/// function of the genome value.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Genome {
    /// Number of racks (must be even and ≥ 4, so permutation splices are
    /// always well-formed).
    pub num_racks: usize,
    /// The segment sequence (non-empty).
    pub segments: Vec<Segment>,
}

impl Genome {
    /// Builds and validates a genome; panics on a structurally invalid one
    /// (use [`Genome::validate`] for fallible construction).
    pub fn new(num_racks: usize, segments: Vec<Segment>) -> Self {
        let g = Genome {
            num_racks,
            segments,
        };
        if let Err(e) = g.validate() {
            panic!("invalid genome: {e}");
        }
        g
    }

    /// Structural validity: even rack count ≥ 4, at least one segment,
    /// every segment valid for this rack count.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_racks < 4 || self.num_racks % 2 != 0 {
            return Err(format!(
                "genome num_racks {} must be even and >= 4",
                self.num_racks
            ));
        }
        if self.segments.is_empty() {
            return Err("genome needs at least one segment".to_string());
        }
        for (i, seg) in self.segments.iter().enumerate() {
            seg.validate(self.num_racks)
                .map_err(|e| format!("segment {i}: {e}"))?;
        }
        Ok(())
    }

    /// Total requests the lowered source emits.
    pub fn len(&self) -> usize {
        self.segments.iter().map(Segment::len).sum()
    }

    /// Whether the genome emits nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Report name of the lowered source.
    pub fn name(&self) -> String {
        format!(
            "genome(n={}, segs={}, len={})",
            self.num_racks,
            self.segments.len(),
            self.len()
        )
    }

    /// Lowers the genome to its request stream. Deterministic: the same
    /// genome value always yields the same sequence.
    pub fn source(&self) -> GenomeSource {
        if let Err(e) = self.validate() {
            panic!("cannot lower invalid genome: {e}");
        }
        let parts = self
            .segments
            .iter()
            .map(|seg| lower_segment(seg, self.num_racks))
            .collect();
        GenomeSource {
            parts,
            part: 0,
            pos: 0,
            len: self.len(),
            num_racks: self.num_racks,
            name: self.name(),
        }
    }

    /// Materialized request sequence (for offline baselines).
    pub fn as_trace(&self) -> Trace {
        self.source().materialize()
    }

    /// Compact JSON form (via the `dcn-util::json` emitter).
    pub fn to_json(&self) -> String {
        to_json_string(self).expect("genome serialization cannot fail")
    }

    /// Parses [`Genome::to_json`] output back; the result is validated.
    pub fn from_json(text: &str) -> Result<Genome, String> {
        Genome::from_value(&parse_json(text)?)
    }

    /// Decodes a genome from an already-parsed [`JsonValue`] subtree (for
    /// documents embedding a genome, e.g. corpus entries); validated.
    pub fn from_value(v: &JsonValue) -> Result<Genome, String> {
        let genome = decode_genome(v)?;
        genome.validate()?;
        Ok(genome)
    }
}

fn decode_genome(v: &JsonValue) -> Result<Genome, String> {
    let num_racks = v
        .get("num_racks")
        .and_then(JsonValue::as_usize)
        .ok_or("genome: missing integer field num_racks")?;
    let segments = v
        .get("segments")
        .and_then(JsonValue::as_array)
        .ok_or("genome: missing array field segments")?
        .iter()
        .enumerate()
        .map(|(i, s)| decode_segment(s).map_err(|e| format!("segment {i}: {e}")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Genome {
        num_racks,
        segments,
    })
}

fn decode_segment(v: &JsonValue) -> Result<Segment, String> {
    let obj = v.as_object().ok_or("segment must be an object")?;
    let (variant, body) = obj
        .first()
        .ok_or("segment object must have one variant key")?;
    let req_usize = |key: &str| {
        body.get(key)
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| format!("{variant}: missing integer field {key}"))
    };
    let req_u64 = |key: &str| {
        body.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("{variant}: missing u64 field {key}"))
    };
    let req_f64 = |key: &str| {
        body.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{variant}: missing number field {key}"))
    };
    match variant.as_str() {
        "Uniform" => Ok(Segment::Uniform {
            len: req_usize("len")?,
            seed: req_u64("seed")?,
        }),
        "Hotspot" => Ok(Segment::Hotspot {
            len: req_usize("len")?,
            num_hot: req_usize("num_hot")?,
            p_hot: req_f64("p_hot")?,
            offset: req_usize("offset")?,
            seed: req_u64("seed")?,
        }),
        "Permutation" => Ok(Segment::Permutation {
            len: req_usize("len")?,
            seed: req_u64("seed")?,
        }),
        "StarBlocks" => Ok(Segment::StarBlocks {
            spokes: req_usize("spokes")?,
            block_len: req_usize("block_len")?,
            blocks: req_usize("blocks")?,
            seed: req_u64("seed")?,
        }),
        "ZipfRamp" => Ok(Segment::ZipfRamp {
            len: req_usize("len")?,
            s_start: req_f64("s_start")?,
            s_end: req_f64("s_end")?,
            seed: req_u64("seed")?,
        }),
        other => Err(format!("unknown segment variant {other:?}")),
    }
}

/// Uniform distinct pair over `0..n` — same two-draw scheme as the
/// synthetic generators, replicated here so genome streams stay pinned
/// even if the synthetic module's private helper changes.
#[inline]
fn uniform_pair(rng: &mut SmallRng, n: usize) -> Pair {
    let a = rng.random_range(0..n as u32);
    let mut b = rng.random_range(0..n as u32 - 1);
    if b >= a {
        b += 1;
    }
    Pair::new(a, b)
}

/// Per-segment generation rule; one [`SeededSource`] wraps each, so `t` is
/// segment-local and the RNG stream is the segment's own.
pub enum SegmentKernel {
    /// See [`Segment::Uniform`].
    Uniform {
        /// Rack count.
        n: usize,
    },
    /// See [`Segment::Hotspot`].
    Hotspot {
        /// Rack count.
        n: usize,
        /// Hot-set size.
        num_hot: usize,
        /// Hot probability.
        p_hot: f64,
        /// Hot-set start rack.
        offset: u32,
    },
    /// See [`Segment::Permutation`].
    Permutation {
        /// The cycled matching.
        pairs: Vec<Pair>,
    },
    /// See [`Segment::StarBlocks`].
    StarBlocks {
        /// Spoke universe.
        spokes: u32,
        /// Block length.
        block_len: usize,
        /// Current block's pair.
        current: Pair,
    },
    /// See [`Segment::ZipfRamp`].
    ZipfRamp {
        /// Pairs in rank order.
        pairs: Vec<Pair>,
        /// One alias table per ramp step.
        tables: Vec<AliasTable>,
        /// Segment length (for the step index).
        len: usize,
    },
}

impl SourceKernel for SegmentKernel {
    fn emit(&mut self, t: usize, rng: &mut SmallRng) -> Pair {
        match self {
            SegmentKernel::Uniform { n } => uniform_pair(rng, *n),
            SegmentKernel::Hotspot {
                n,
                num_hot,
                p_hot,
                offset,
            } => {
                if rng.random_range(0.0..1.0f64) < *p_hot {
                    let p = uniform_pair(rng, *num_hot);
                    // Rotate the hot pair into the window starting at
                    // `offset` (distinctness is rotation-invariant).
                    let n = *n as u32;
                    Pair::new((p.lo() + *offset) % n, (p.hi() + *offset) % n)
                } else {
                    uniform_pair(rng, *n)
                }
            }
            SegmentKernel::Permutation { pairs } => pairs[t % pairs.len()],
            SegmentKernel::StarBlocks {
                spokes,
                block_len,
                current,
            } => {
                if t % *block_len == 0 {
                    let spoke = rng.random_range(1..=*spokes);
                    *current = Pair::new(0, spoke);
                }
                *current
            }
            SegmentKernel::ZipfRamp { pairs, tables, len } => {
                let step = (t * tables.len() / *len).min(tables.len() - 1);
                pairs[tables[step].sample(rng) as usize]
            }
        }
    }
}

/// Builds the seeded per-segment source. Setup draws (matching shuffle,
/// rank shuffle) happen before the [`SeededSource`] captures its reset
/// state, mirroring the synthetic generators.
fn lower_segment(seg: &Segment, num_racks: usize) -> SeededSource<SegmentKernel> {
    match *seg {
        Segment::Uniform { len, seed } => {
            let rng = SmallRng::seed_from_u64(derive_seed(seed, 0x6E01));
            SeededSource::new(
                SegmentKernel::Uniform { n: num_racks },
                rng,
                len,
                num_racks,
                String::new(),
            )
        }
        Segment::Hotspot {
            len,
            num_hot,
            p_hot,
            offset,
            seed,
        } => {
            let rng = SmallRng::seed_from_u64(derive_seed(seed, 0x6E02));
            SeededSource::new(
                SegmentKernel::Hotspot {
                    n: num_racks,
                    num_hot,
                    p_hot,
                    offset: offset as u32,
                },
                rng,
                len,
                num_racks,
                String::new(),
            )
        }
        Segment::Permutation { len, seed } => {
            let mut rng = SmallRng::seed_from_u64(derive_seed(seed, 0x6E03));
            let mut racks: Vec<u32> = (0..num_racks as u32).collect();
            shuffle(&mut racks, &mut rng);
            let pairs: Vec<Pair> = racks
                .chunks_exact(2)
                .map(|c| Pair::new(c[0], c[1]))
                .collect();
            SeededSource::new(
                SegmentKernel::Permutation { pairs },
                rng,
                len,
                num_racks,
                String::new(),
            )
        }
        Segment::StarBlocks {
            spokes,
            block_len,
            blocks,
            seed,
        } => {
            let rng = SmallRng::seed_from_u64(derive_seed(seed, 0x6E04));
            SeededSource::new(
                SegmentKernel::StarBlocks {
                    spokes: spokes as u32,
                    block_len,
                    current: Pair::new(0, 1),
                },
                rng,
                block_len * blocks,
                num_racks,
                String::new(),
            )
        }
        Segment::ZipfRamp {
            len,
            s_start,
            s_end,
            seed,
        } => {
            let mut rng = SmallRng::seed_from_u64(derive_seed(seed, 0x6E05));
            let mut pairs: Vec<Pair> = (0..num_racks as u32)
                .flat_map(|a| ((a + 1)..num_racks as u32).map(move |b| Pair::new(a, b)))
                .collect();
            shuffle(&mut pairs, &mut rng);
            let steps = ZIPF_RAMP_STEPS.min(len).max(1);
            let tables: Vec<AliasTable> = (0..steps)
                .map(|k| {
                    // Step k covers positions [k·len/steps, (k+1)·len/steps);
                    // its exponent is the ramp value at the step midpoint.
                    let frac = (k as f64 + 0.5) / steps as f64;
                    let s = s_start + (s_end - s_start) * frac;
                    AliasTable::new(&zipf_weights(pairs.len(), s))
                })
                .collect();
            SeededSource::new(
                SegmentKernel::ZipfRamp { pairs, tables, len },
                rng,
                len,
                num_racks,
                String::new(),
            )
        }
    }
}

/// The lowered stream of a [`Genome`]: its segments' seeded sources,
/// concatenated. Implements the full [`RequestSource`] contract (batch
/// `fill` draw-for-draw equal to `next_request`, `reset` replay identity).
pub struct GenomeSource {
    parts: Vec<SeededSource<SegmentKernel>>,
    part: usize,
    pos: usize,
    len: usize,
    num_racks: usize,
    name: String,
}

impl RequestSource for GenomeSource {
    fn num_racks(&self) -> usize {
        self.num_racks
    }

    fn len(&self) -> usize {
        self.len
    }

    fn remaining(&self) -> usize {
        self.len - self.pos
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_request(&mut self) -> Option<Pair> {
        while self.part < self.parts.len() {
            if let Some(p) = self.parts[self.part].next_request() {
                self.pos += 1;
                return Some(p);
            }
            self.part += 1;
        }
        None
    }

    fn fill(&mut self, buf: &mut [Pair]) -> usize {
        let mut written = 0;
        while written < buf.len() && self.part < self.parts.len() {
            let part = &mut self.parts[self.part];
            written += part.fill(&mut buf[written..]);
            if part.remaining() == 0 {
                self.part += 1;
            }
        }
        self.pos += written;
        written
    }

    fn reset(&mut self) {
        for part in &mut self.parts {
            part.reset();
        }
        self.part = 0;
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_genome() -> Genome {
        Genome::new(
            8,
            vec![
                Segment::Uniform { len: 50, seed: 1 },
                Segment::Hotspot {
                    len: 60,
                    num_hot: 3,
                    p_hot: 0.9,
                    offset: 5,
                    seed: 2,
                },
                Segment::Permutation { len: 30, seed: 3 },
                Segment::StarBlocks {
                    spokes: 5,
                    block_len: 7,
                    blocks: 10,
                    seed: 4,
                },
                Segment::ZipfRamp {
                    len: 40,
                    s_start: 0.2,
                    s_end: 1.8,
                    seed: 5,
                },
            ],
        )
    }

    #[test]
    fn len_is_segment_sum_and_source_agrees() {
        let g = sample_genome();
        assert_eq!(g.len(), 50 + 60 + 30 + 70 + 40);
        let mut src = g.source();
        assert_eq!(src.len(), g.len());
        assert_eq!(src.num_racks(), 8);
        assert_eq!(src.name(), g.name());
        let emitted: Vec<Pair> = std::iter::from_fn(|| src.next_request()).collect();
        assert_eq!(emitted.len(), g.len());
        assert!(src.next_request().is_none());
        assert!(emitted.iter().all(|p| (p.hi() as usize) < g.num_racks));
    }

    #[test]
    fn lowering_is_deterministic() {
        let g = sample_genome();
        assert_eq!(g.as_trace().requests, g.as_trace().requests);
    }

    #[test]
    fn segment_streams_are_independent() {
        // Reseeding one segment must not change any other segment's output.
        let g1 = sample_genome();
        let mut g2 = g1.clone();
        g2.segments[1].reseed(0xFEED);
        let (t1, t2) = (g1.as_trace().requests, g2.as_trace().requests);
        assert_eq!(&t1[..50], &t2[..50], "segment 0 unchanged");
        assert_ne!(&t1[50..110], &t2[50..110], "segment 1 reseeded");
        assert_eq!(&t1[110..], &t2[110..], "segments 2.. unchanged");
    }

    #[test]
    fn hotspot_offset_moves_the_hot_set() {
        let hot = |offset: usize| {
            let g = Genome::new(
                12,
                vec![Segment::Hotspot {
                    len: 4000,
                    num_hot: 3,
                    p_hot: 1.0,
                    offset,
                    seed: 7,
                }],
            );
            let t = g.as_trace();
            t.requests
                .iter()
                .flat_map(|p| [p.lo(), p.hi()])
                .collect::<std::collections::HashSet<u32>>()
        };
        assert_eq!(hot(0), [0u32, 1, 2].into_iter().collect());
        assert_eq!(hot(5), [5u32, 6, 7].into_iter().collect());
        // Wrapping window.
        assert_eq!(hot(11), [11u32, 0, 1].into_iter().collect());
    }

    #[test]
    fn star_blocks_repeat_hub_pairs() {
        let g = Genome::new(
            8,
            vec![Segment::StarBlocks {
                spokes: 6,
                block_len: 5,
                blocks: 40,
                seed: 3,
            }],
        );
        let t = g.as_trace();
        assert!(t.requests.iter().all(|p| p.lo() == 0));
        for block in t.requests.chunks_exact(5) {
            assert!(block.iter().all(|&p| p == block[0]));
        }
    }

    #[test]
    fn zipf_ramp_skew_increases_along_the_segment() {
        let g = Genome::new(
            10,
            vec![Segment::ZipfRamp {
                len: 40_000,
                s_start: 0.1,
                s_end: 2.5,
                seed: 9,
            }],
        );
        let t = g.as_trace();
        let distinct = |reqs: &[Pair]| reqs.iter().collect::<std::collections::HashSet<_>>().len();
        let head = distinct(&t.requests[..10_000]);
        let tail = distinct(&t.requests[30_000..]);
        assert!(
            tail < head,
            "ramp must concentrate traffic: head {head} distinct vs tail {tail}"
        );
    }

    #[test]
    fn json_round_trip_is_identity() {
        let g = sample_genome();
        let text = g.to_json();
        let back = Genome::from_json(&text).expect("round trip");
        assert_eq!(back, g);
        assert_eq!(back.to_json(), text);
        // Large seeds survive exactly.
        let mut g2 = g;
        g2.segments[0].reseed(u64::MAX - 1);
        assert_eq!(Genome::from_json(&g2.to_json()).unwrap(), g2);
    }

    #[test]
    fn from_json_rejects_malformed_and_invalid() {
        assert!(Genome::from_json("{").is_err());
        assert!(Genome::from_json("{\"num_racks\":8}").is_err());
        assert!(Genome::from_json("{\"num_racks\":8,\"segments\":[]}").is_err());
        // Structurally parseable but semantically invalid (odd rack count).
        let bad = r#"{"num_racks":7,"segments":[{"Uniform":{"len":5,"seed":1}}]}"#;
        assert!(Genome::from_json(bad).unwrap_err().contains("even"));
        let unknown = r#"{"num_racks":8,"segments":[{"Mystery":{"len":5}}]}"#;
        assert!(Genome::from_json(unknown)
            .unwrap_err()
            .contains("unknown segment variant"));
    }

    #[test]
    fn validate_rejects_bad_segments() {
        let cases = [
            Genome {
                num_racks: 8,
                segments: vec![Segment::Uniform { len: 0, seed: 1 }],
            },
            Genome {
                num_racks: 8,
                segments: vec![Segment::Hotspot {
                    len: 5,
                    num_hot: 9,
                    p_hot: 0.5,
                    offset: 0,
                    seed: 1,
                }],
            },
            Genome {
                num_racks: 8,
                segments: vec![Segment::Hotspot {
                    len: 5,
                    num_hot: 3,
                    p_hot: 1.5,
                    offset: 0,
                    seed: 1,
                }],
            },
            Genome {
                num_racks: 8,
                segments: vec![Segment::StarBlocks {
                    spokes: 8,
                    block_len: 2,
                    blocks: 2,
                    seed: 1,
                }],
            },
            Genome {
                num_racks: 8,
                segments: vec![Segment::ZipfRamp {
                    len: 5,
                    s_start: -0.5,
                    s_end: 1.0,
                    seed: 1,
                }],
            },
        ];
        for g in cases {
            assert!(g.validate().is_err(), "{g:?} should be invalid");
        }
        assert!(sample_genome().validate().is_ok());
    }
}

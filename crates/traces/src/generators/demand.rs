//! Matrix-driven streaming kernels: i.i.d. sampling from a
//! [`DemandMatrix`] and phase-scheduled sampling from a [`MatrixSequence`].
//!
//! These are the generic counterparts of the Microsoft generator: *any*
//! demand matrix becomes a workload ([`matrix_source`]), and a matrix
//! sequence becomes a workload whose distribution moves over time
//! ([`sequence_source`]) — phase switches and drift included, which
//! frozen-matrix i.i.d. sampling cannot express. Setup builds one alias
//! table per matrix (O(n²) each); the stream itself is O(1) per request and
//! O(1) memory in the stream length, like every other kernel.

use crate::sampler::AliasTable;
use crate::source::{RequestSource, SeededSource, SourceKernel};
use crate::trace::Trace;
use dcn_demand::{DemandMatrix, MatrixSequence};
use dcn_topology::Pair;
use dcn_util::rngx::derive_seed;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Kernel sampling i.i.d. from a frozen weighted pair list.
///
/// The pair/weight *ordering* is part of the sampled sequence (the alias
/// table maps RNG draws to list positions), so the Microsoft generator
/// feeds its historical construction order through
/// [`MatrixKernel::from_weighted_pairs`] to keep seeded streams
/// byte-identical, while [`MatrixKernel::from_matrix`] uses the canonical
/// triangle order of a [`DemandMatrix`].
pub struct MatrixKernel {
    pairs: Vec<Pair>,
    table: AliasTable,
}

impl MatrixKernel {
    /// Samples from a demand matrix in canonical upper-triangle order.
    pub fn from_matrix(matrix: &DemandMatrix) -> Self {
        Self::from_weighted_pairs(matrix.pair_list(), matrix.weights())
    }

    /// Samples from an explicit `(pairs, weights)` list (orders must match).
    pub fn from_weighted_pairs(pairs: Vec<Pair>, weights: &[f64]) -> Self {
        assert_eq!(pairs.len(), weights.len(), "pair/weight lists must align");
        Self {
            table: AliasTable::new(weights),
            pairs,
        }
    }
}

impl SourceKernel for MatrixKernel {
    fn emit(&mut self, _t: usize, rng: &mut SmallRng) -> Pair {
        self.pairs[self.table.sample(rng) as usize]
    }

    fn emit_batch(&mut self, _t0: usize, out: &mut [Pair], rng: &mut SmallRng) {
        let (pairs, table) = (self.pairs.as_slice(), &self.table);
        for slot in out.iter_mut() {
            *slot = pairs[table.sample(rng) as usize];
        }
    }
}

/// An i.i.d. stream of `len` requests sampled from `matrix`.
pub fn matrix_source(matrix: &DemandMatrix, len: usize, seed: u64) -> SeededSource<MatrixKernel> {
    let rng = SmallRng::seed_from_u64(derive_seed(seed, 0xD17));
    SeededSource::new(
        MatrixKernel::from_matrix(matrix),
        rng,
        len,
        matrix.num_racks(),
        format!("demand({}, n={})", matrix.name(), matrix.num_racks()),
    )
}

/// Materialized [`matrix_source`].
pub fn matrix_trace(matrix: &DemandMatrix, len: usize, seed: u64) -> Trace {
    matrix_source(matrix, len, seed).materialize()
}

/// Kernel of [`sequence_source`]: one alias table per phase, switched as
/// the stream position crosses phase boundaries.
pub struct SequenceKernel {
    pairs: Vec<Pair>,
    tables: Vec<AliasTable>,
    ends: Vec<usize>,
    current: usize,
}

impl SequenceKernel {
    /// Builds the per-phase tables (canonical pair order is shared by all
    /// phases, since they have the same rack count).
    pub fn new(sequence: &MatrixSequence) -> Self {
        let pairs = sequence.phases()[0].matrix.pair_list();
        let tables = sequence
            .phases()
            .iter()
            .map(|p| AliasTable::new(p.matrix.weights()))
            .collect();
        Self {
            pairs,
            tables,
            ends: sequence.phase_ends(),
            current: 0,
        }
    }
}

impl SourceKernel for SequenceKernel {
    fn emit(&mut self, t: usize, rng: &mut SmallRng) -> Pair {
        while t >= self.ends[self.current] {
            self.current += 1;
        }
        self.pairs[self.tables[self.current].sample(rng) as usize]
    }

    fn emit_batch(&mut self, t0: usize, out: &mut [Pair], rng: &mut SmallRng) {
        // One inner loop per phase segment: the phase lookup happens once
        // per boundary crossed instead of once per request.
        let mut t = t0;
        let mut written = 0;
        while written < out.len() {
            while t >= self.ends[self.current] {
                self.current += 1;
            }
            let take = (out.len() - written).min(self.ends[self.current] - t);
            let (pairs, table) = (self.pairs.as_slice(), &self.tables[self.current]);
            for slot in &mut out[written..written + take] {
                *slot = pairs[table.sample(rng) as usize];
            }
            written += take;
            t += take;
        }
    }

    fn reset_state(&mut self) {
        self.current = 0;
    }
}

/// A stream following `sequence`'s phase schedule; its length is the
/// sequence's total length.
pub fn sequence_source(sequence: &MatrixSequence, seed: u64) -> SeededSource<SequenceKernel> {
    let rng = SmallRng::seed_from_u64(derive_seed(seed, 0xD25));
    SeededSource::new(
        SequenceKernel::new(sequence),
        rng,
        sequence.total_len(),
        sequence.num_racks(),
        format!(
            "demand-seq({}, n={})",
            sequence.name(),
            sequence.num_racks()
        ),
    )
}

/// Materialized [`sequence_source`].
pub fn sequence_trace(sequence: &MatrixSequence, seed: u64) -> Trace {
    sequence_source(sequence, seed).materialize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::RequestSource;
    use crate::stats::TraceStats;
    use dcn_demand::MatrixSequence;

    #[test]
    fn matrix_stream_respects_support() {
        // A permutation matrix only ever emits its own pairs.
        let matrix = DemandMatrix::permutation(8, 3);
        let support: std::collections::HashSet<Pair> = matrix.entries().map(|(p, _)| p).collect();
        let trace = matrix_trace(&matrix, 2_000, 1);
        assert_eq!(trace.num_racks, 8);
        for r in &trace.requests {
            assert!(support.contains(r), "{r} not in matrix support");
        }
    }

    #[test]
    fn matrix_stream_skew_follows_matrix() {
        let flat = matrix_trace(&DemandMatrix::uniform(20), 40_000, 2);
        let skewed = matrix_trace(&DemandMatrix::zipf_pairs(20, 1.4, 2), 40_000, 2);
        let g_flat = TraceStats::compute(&flat).pair_gini;
        let g_skewed = TraceStats::compute(&skewed).pair_gini;
        assert!(
            g_skewed > g_flat + 0.3,
            "matrix skew must carry into the stream ({g_flat} vs {g_skewed})"
        );
    }

    #[test]
    fn sequence_switches_distributions_at_boundaries() {
        // Phase 1 only uses pairs among racks 0..2, phase 2 among 3..5.
        let mut a = DemandMatrix::new(6, "a");
        a.set(Pair::new(0, 1), 1.0);
        a.set(Pair::new(0, 2), 1.0);
        let mut b = DemandMatrix::new(6, "b");
        b.set(Pair::new(3, 4), 1.0);
        b.set(Pair::new(4, 5), 1.0);
        let seq = MatrixSequence::switching(vec![a, b], 500);
        let trace = sequence_trace(&seq, 7);
        assert_eq!(trace.len(), 1_000);
        for (t, r) in trace.requests.iter().enumerate() {
            if t < 500 {
                assert!(r.hi() <= 2, "phase 1 leaked {r} at {t}");
            } else {
                assert!(r.lo() >= 3, "phase 2 leaked {r} at {t}");
            }
        }
    }

    #[test]
    fn sequence_source_resets_across_phases() {
        let seq = MatrixSequence::zipf_switching(10, 3, 200, 1.2, 5);
        let mut source = sequence_source(&seq, 9);
        let full: Vec<Pair> = std::iter::from_fn(|| source.next_request()).collect();
        assert_eq!(full.len(), 600);
        // Interrupt mid-phase-2, then reset: replay must be identical.
        source.reset();
        for _ in 0..350 {
            source.next_request();
        }
        source.reset();
        let replay: Vec<Pair> = std::iter::from_fn(|| source.next_request()).collect();
        assert_eq!(full, replay);
    }

    #[test]
    fn deterministic_per_seed() {
        let matrix = DemandMatrix::zipf_pairs(12, 1.1, 3);
        let a = matrix_trace(&matrix, 1_000, 4);
        let b = matrix_trace(&matrix, 1_000, 4);
        assert_eq!(a.requests, b.requests);
        let c = matrix_trace(&matrix, 1_000, 5);
        assert_ne!(a.requests, c.requests);
    }
}

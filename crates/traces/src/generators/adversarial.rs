//! Adversarial block sequences on the star graph — the lower-bound
//! construction of §2.4 (Lemma 1).
//!
//! The reduction maps a (b,a)-paging request for item `v_i` to a *block* of
//! `α` consecutive requests to the node pair `{v0, v_i}` on a star with hub
//! `v0`. An algorithm that does not hold `{v0, v_i}` as a matching edge pays
//! ≈ α·ℓ for the block; holding it costs 1 per request plus α per
//! reconfiguration — exactly the paging trade-off scaled by α.
//!
//! Both nemeses stream lazily (state: the current block's pair), so the
//! lower-bound experiments scale to arbitrarily many blocks at O(1) memory.

use crate::source::{RequestSource, SeededSource, SourceKernel};
use crate::trace::Trace;
use dcn_topology::Pair;
use dcn_util::rngx::derive_seed;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Kernel of [`star_uniform_source`]: redraws a uniform spoke at each block
/// border, then repeats it for the rest of the block.
pub struct StarUniformKernel {
    spokes: usize,
    alpha: usize,
    current: Pair,
}

impl SourceKernel for StarUniformKernel {
    fn emit(&mut self, t: usize, rng: &mut SmallRng) -> Pair {
        if t % self.alpha == 0 {
            let spoke = rng.random_range(1..=(self.spokes as u32));
            self.current = Pair::new(0, spoke);
        }
        self.current
    }
}

/// Oblivious nemesis: each block picks a spoke uniformly from `1..=spokes`
/// (a universe of `spokes` items; choose `spokes = b + 1` to stress a cache
/// of size `b`). Streams `num_blocks` blocks of `alpha` requests each, on
/// the star network with racks `0..=spokes` (hub = rack 0).
pub fn star_uniform_source(
    spokes: usize,
    alpha: usize,
    num_blocks: usize,
    seed: u64,
) -> SeededSource<StarUniformKernel> {
    assert!(spokes >= 2 && alpha >= 1);
    let rng = SmallRng::seed_from_u64(derive_seed(seed, 0xAD));
    SeededSource::new(
        StarUniformKernel {
            spokes,
            alpha,
            current: Pair::new(0, 1),
        },
        rng,
        alpha * num_blocks,
        spokes + 1,
        format!("star-nemesis(spokes={spokes}, alpha={alpha})"),
    )
}

/// Materialized [`star_uniform_source`].
pub fn star_uniform_blocks(spokes: usize, alpha: usize, num_blocks: usize, seed: u64) -> Trace {
    star_uniform_source(spokes, alpha, num_blocks, seed).materialize()
}

/// Kernel of [`star_round_robin_source`] (fully deterministic).
pub struct StarRoundRobinKernel {
    spokes: usize,
    alpha: usize,
}

impl SourceKernel for StarRoundRobinKernel {
    fn emit(&mut self, t: usize, _rng: &mut SmallRng) -> Pair {
        let blk = t / self.alpha;
        Pair::new(0, (blk % self.spokes) as u32 + 1)
    }
}

/// Round-robin nemesis: blocks cycle deterministically through all spokes —
/// the classic worst case for LRU-like deterministic schemes when the cache
/// holds `spokes - 1` items.
pub fn star_round_robin_source(
    spokes: usize,
    alpha: usize,
    num_blocks: usize,
) -> SeededSource<StarRoundRobinKernel> {
    assert!(spokes >= 2 && alpha >= 1);
    SeededSource::new(
        StarRoundRobinKernel { spokes, alpha },
        SmallRng::seed_from_u64(0),
        alpha * num_blocks,
        spokes + 1,
        format!("star-rr(spokes={spokes}, alpha={alpha})"),
    )
}

/// Materialized [`star_round_robin_source`].
pub fn star_round_robin_blocks(spokes: usize, alpha: usize, num_blocks: usize) -> Trace {
    star_round_robin_source(spokes, alpha, num_blocks).materialize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_structure() {
        let t = star_uniform_blocks(5, 7, 100, 3);
        assert_eq!(t.len(), 700);
        // Every request involves the hub.
        assert!(t.requests.iter().all(|r| r.lo() == 0));
        // Requests arrive in runs of alpha.
        for chunk in t.requests.chunks_exact(7) {
            assert!(
                chunk.iter().all(|&r| r == chunk[0]),
                "block must repeat one pair"
            );
        }
    }

    #[test]
    fn round_robin_cycles() {
        let t = star_round_robin_blocks(3, 2, 6);
        let spokes: Vec<u32> = t.requests.chunks_exact(2).map(|c| c[0].hi()).collect();
        assert_eq!(spokes, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn uniform_nemesis_touches_all_spokes() {
        let t = star_uniform_blocks(6, 1, 5000, 1);
        let distinct: std::collections::HashSet<u32> = t.requests.iter().map(|r| r.hi()).collect();
        assert_eq!(distinct.len(), 6);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            star_uniform_blocks(4, 3, 50, 9).requests,
            star_uniform_blocks(4, 3, 50, 9).requests
        );
    }
}

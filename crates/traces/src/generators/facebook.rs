//! Facebook-like cluster workloads (substitute for the Roy et al. \[63\]
//! traces used in the paper's Figs. 1–3).
//!
//! The generator layers temporal structure on top of a skewed spatial base:
//!
//! * **Spatial base**: rack popularity follows a Zipf law over a random
//!   (seeded) permutation; each source has its own Zipf-permuted partner
//!   ranking. This mirrors the heavy-tailed traffic matrices measured in
//!   \[63\] and gives the stable "heavy pairs" that b-matchings exploit.
//! * **Temporal structure**: a drifting working set. Each request is, with
//!   probability `p_burst`, a repetition of a recent pair (uniform over an
//!   LRU working set of size `working_set`); otherwise a fresh sample from
//!   the spatial base. This produces the bursty arrivals and temporal
//!   locality that online algorithms exploit and i.i.d. traffic lacks.
//! * **Hadoop preset** additionally runs *shuffle phases*: periodically a
//!   small set of pairs becomes hot for a phase (map→reduce traffic),
//!   modeling the batch nature of that cluster.
//!
//! Presets roughly order the clusters by temporal structure, matching the
//! paper's qualitative description: Database (strongest locality, highest
//! skew) > WebService > Hadoop (phase-driven, flatter base skew).
//!
//! The workload is a lazy [`RequestSource`] whose per-request state is the
//! bounded working set plus the current phase pairs — O(1) in the stream
//! length — so arbitrarily long Facebook-like streams fit in constant
//! memory. The `*_trace` functions materialize it for eager callers.

use crate::sampler::{zipf_weights, AliasTable};
use crate::source::{RequestSource, SeededSource, SourceKernel};
use crate::trace::Trace;
use dcn_topology::Pair;
use dcn_util::rngx::{derive_seed, shuffle};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Which Facebook cluster to emulate (Fig. 1 / 2 / 3 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FacebookCluster {
    /// SQL-serving database cluster: high skew, strong temporal locality.
    Database,
    /// Web-service cluster: moderate skew and locality.
    WebService,
    /// Hadoop batch cluster: shuffle phases, flatter base skew.
    Hadoop,
}

/// Tunable generator parameters (see [`FacebookParams::preset`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FacebookParams {
    /// Zipf exponent of source-rack popularity.
    pub src_skew: f64,
    /// Zipf exponent of per-source partner ranking.
    pub dst_skew: f64,
    /// Probability that a request repeats a working-set pair.
    pub p_burst: f64,
    /// Number of recent distinct pairs kept in the working set.
    pub working_set: usize,
    /// Shuffle phases: 0 disables; otherwise the phase length in requests.
    pub phase_len: usize,
    /// Number of hot pairs per shuffle phase.
    pub phase_pairs: usize,
    /// Probability that an in-phase request uses a hot phase pair.
    pub p_phase: f64,
}

impl FacebookParams {
    /// Cluster presets calibrated so that the top-b partners of a rack
    /// capture the traffic shares the paper's cost reductions imply
    /// (roughly 30-50% for b ≈ 18 on 100 racks).
    pub fn preset(cluster: FacebookCluster) -> Self {
        match cluster {
            FacebookCluster::Database => Self {
                src_skew: 1.0,
                dst_skew: 1.1,
                p_burst: 0.45,
                working_set: 320,
                phase_len: 0,
                phase_pairs: 0,
                p_phase: 0.0,
            },
            FacebookCluster::WebService => Self {
                src_skew: 0.9,
                dst_skew: 1.0,
                p_burst: 0.35,
                working_set: 512,
                phase_len: 0,
                phase_pairs: 0,
                p_phase: 0.0,
            },
            FacebookCluster::Hadoop => Self {
                src_skew: 0.6,
                dst_skew: 0.8,
                p_burst: 0.25,
                working_set: 256,
                phase_len: 12_000,
                phase_pairs: 90,
                p_phase: 0.5,
            },
        }
    }
}

/// Bounded LRU set of recent pairs with O(1) membership-refresh and uniform
/// sampling (ring buffer + recency map; duplicates in the ring are resolved
/// lazily).
struct WorkingSet {
    ring: std::collections::VecDeque<Pair>,
    cap: usize,
}

impl WorkingSet {
    fn new(cap: usize) -> Self {
        Self {
            ring: std::collections::VecDeque::with_capacity(cap + 1),
            cap,
        }
    }

    fn push(&mut self, p: Pair) {
        self.ring.push_back(p);
        if self.ring.len() > self.cap {
            self.ring.pop_front();
        }
    }

    fn sample(&self, rng: &mut SmallRng) -> Option<Pair> {
        if self.ring.is_empty() {
            None
        } else {
            Some(self.ring[rng.random_range(0..self.ring.len())])
        }
    }
}

/// Kernel of [`facebook_source`]: the Zipf spatial base is frozen at setup,
/// the working set and phase pairs evolve per request.
pub struct FacebookKernel {
    params: FacebookParams,
    src_perm: Vec<u32>,
    src_table: AliasTable,
    dst_tables: Vec<(Vec<u32>, AliasTable)>,
    working: WorkingSet,
    phase_hot: Vec<Pair>,
}

impl FacebookKernel {
    fn sample_fresh(&self, rng: &mut SmallRng) -> Pair {
        let src = self.src_perm[self.src_table.sample(rng) as usize];
        let (partners, table) = &self.dst_tables[src as usize];
        let dst = partners[table.sample(rng) as usize];
        Pair::new(src, dst)
    }
}

impl SourceKernel for FacebookKernel {
    fn emit(&mut self, t: usize, rng: &mut SmallRng) -> Pair {
        // Hadoop-style shuffle phases: refresh the hot set at phase borders.
        if self.params.phase_len > 0 && t % self.params.phase_len == 0 {
            self.phase_hot.clear();
            for _ in 0..self.params.phase_pairs {
                let fresh = self.sample_fresh(rng);
                self.phase_hot.push(fresh);
            }
        }
        let pair =
            if !self.phase_hot.is_empty() && rng.random_range(0.0..1.0f64) < self.params.p_phase {
                self.phase_hot[rng.random_range(0..self.phase_hot.len())]
            } else if rng.random_range(0.0..1.0f64) < self.params.p_burst {
                match self.working.sample(rng) {
                    Some(p) => p,
                    None => self.sample_fresh(rng),
                }
            } else {
                self.sample_fresh(rng)
            };
        self.working.push(pair);
        pair
    }

    fn reset_state(&mut self) {
        self.working.ring.clear();
        self.phase_hot.clear();
    }
}

/// A Facebook-like request stream over `num_racks` racks.
pub fn facebook_source(
    num_racks: usize,
    len: usize,
    params: FacebookParams,
    seed: u64,
) -> SeededSource<FacebookKernel> {
    assert!(num_racks >= 3, "need at least 3 racks");
    let mut rng = SmallRng::seed_from_u64(derive_seed(seed, 0xFB));

    // Spatial base: Zipf-over-permutation source popularity...
    let mut src_perm: Vec<u32> = (0..num_racks as u32).collect();
    shuffle(&mut src_perm, &mut rng);
    let src_table = AliasTable::new(&zipf_weights(num_racks, params.src_skew));
    // ...and an independent partner ranking per source.
    let dst_tables: Vec<(Vec<u32>, AliasTable)> = (0..num_racks)
        .map(|s| {
            let mut partners: Vec<u32> = (0..num_racks as u32).filter(|&v| v != s as u32).collect();
            shuffle(&mut partners, &mut rng);
            (
                partners,
                AliasTable::new(&zipf_weights(num_racks - 1, params.dst_skew)),
            )
        })
        .collect();

    let kernel = FacebookKernel {
        params,
        src_perm,
        src_table,
        dst_tables,
        working: WorkingSet::new(params.working_set.max(1)),
        phase_hot: Vec::new(),
    };
    SeededSource::new(kernel, rng, len, num_racks, format!("facebook({params:?})"))
}

/// Generates a Facebook-like trace over `num_racks` racks (materialized
/// [`facebook_source`]).
pub fn facebook_trace(num_racks: usize, len: usize, params: FacebookParams, seed: u64) -> Trace {
    facebook_source(num_racks, len, params, seed).materialize()
}

/// Convenience: preset stream for a named cluster.
pub fn facebook_cluster_source(
    cluster: FacebookCluster,
    num_racks: usize,
    len: usize,
    seed: u64,
) -> SeededSource<FacebookKernel> {
    facebook_source(num_racks, len, FacebookParams::preset(cluster), seed)
        .with_name(format!("facebook-{cluster:?}(n={num_racks})"))
}

/// Convenience: preset trace for a named cluster.
pub fn facebook_cluster_trace(
    cluster: FacebookCluster,
    num_racks: usize,
    len: usize,
    seed: u64,
) -> Trace {
    facebook_cluster_source(cluster, num_racks, len, seed).materialize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn deterministic_per_seed() {
        let a = facebook_cluster_trace(FacebookCluster::Database, 20, 5000, 7);
        let b = facebook_cluster_trace(FacebookCluster::Database, 20, 5000, 7);
        assert_eq!(a.requests, b.requests);
        let c = facebook_cluster_trace(FacebookCluster::Database, 20, 5000, 8);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn endpoints_in_range_and_distinct() {
        let t = facebook_cluster_trace(FacebookCluster::Hadoop, 30, 20_000, 3);
        assert_eq!(t.len(), 20_000);
        for r in &t.requests {
            assert!((r.hi() as usize) < 30);
            assert!(r.lo() != r.hi());
        }
    }

    #[test]
    fn database_is_more_skewed_than_hadoop() {
        let db = facebook_cluster_trace(FacebookCluster::Database, 50, 60_000, 1);
        let hd = facebook_cluster_trace(FacebookCluster::Hadoop, 50, 60_000, 1);
        let g_db = TraceStats::compute(&db).pair_gini;
        let g_hd = TraceStats::compute(&hd).pair_gini;
        assert!(
            g_db > g_hd,
            "database gini {g_db} should exceed hadoop gini {g_hd}"
        );
        assert!(
            g_db > 0.5,
            "database traffic should be clearly skewed, gini {g_db}"
        );
    }

    #[test]
    fn bursts_create_temporal_locality() {
        // With bursts, the median reuse distance must be far below what an
        // i.i.d. shuffle of the same multiset would give.
        let t = facebook_cluster_trace(FacebookCluster::Database, 50, 40_000, 5);
        let stats = TraceStats::compute(&t);
        assert!(
            stats.median_reuse_distance < 1_500.0,
            "expected bursty reuse, median {}",
            stats.median_reuse_distance
        );
    }

    #[test]
    fn top_partner_coverage_supports_b_matching() {
        // The top 18 partners of each rack must capture a large share of its
        // traffic — the regime in which the paper reports ~35% cost savings.
        let t = facebook_cluster_trace(FacebookCluster::Database, 100, 100_000, 11);
        let cov = TraceStats::compute(&t).topk_partner_coverage(&t, 18);
        assert!(
            cov > 0.45,
            "top-18 coverage {cov} too small for the paper's regime"
        );
    }
}

//! Reference synthetic workloads: uniform, fixed permutation, hotspot and
//! pure-Zipf pair traces. These bracket the structured generators: uniform
//! has no structure at all (worst case for demand-aware networks),
//! permutation is the best case (a perfect matching exists), hotspot and
//! Zipf interpolate.

use crate::sampler::{zipf_weights, AliasTable};
use crate::trace::Trace;
use dcn_topology::Pair;
use dcn_util::rngx::derive_seed;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Uniform i.i.d. requests over all distinct pairs.
pub fn uniform_trace(num_racks: usize, len: usize, seed: u64) -> Trace {
    assert!(num_racks >= 2);
    let mut rng = SmallRng::seed_from_u64(derive_seed(seed, 0x01));
    let requests = (0..len)
        .map(|_| {
            let a = rng.random_range(0..num_racks as u32);
            let mut b = rng.random_range(0..num_racks as u32 - 1);
            if b >= a {
                b += 1;
            }
            Pair::new(a, b)
        })
        .collect();
    Trace::new(num_racks, requests, format!("uniform(n={num_racks})"))
}

/// Requests cycle deterministically over a fixed random perfect-matching-like
/// permutation: rack `i` talks only to `π(i)`. The ideal case for
/// reconfigurable links — b=1 already serves everything after one
/// reconfiguration per pair.
pub fn permutation_trace(num_racks: usize, len: usize, seed: u64) -> Trace {
    assert!(
        num_racks >= 2 && num_racks.is_multiple_of(2),
        "permutation trace needs an even rack count"
    );
    let mut rng = SmallRng::seed_from_u64(derive_seed(seed, 0x02));
    let mut racks: Vec<u32> = (0..num_racks as u32).collect();
    for i in (1..racks.len()).rev() {
        let j = rng.random_range(0..=i);
        racks.swap(i, j);
    }
    let pairs: Vec<Pair> = racks
        .chunks_exact(2)
        .map(|c| Pair::new(c[0], c[1]))
        .collect();
    let requests = (0..len).map(|t| pairs[t % pairs.len()]).collect();
    Trace::new(num_racks, requests, format!("permutation(n={num_racks})"))
}

/// A few hot racks exchange most of the traffic; the rest is uniform noise.
pub fn hotspot_trace(num_racks: usize, len: usize, num_hot: usize, p_hot: f64, seed: u64) -> Trace {
    assert!(num_racks >= 4 && num_hot >= 2 && num_hot <= num_racks);
    assert!((0.0..=1.0).contains(&p_hot));
    let mut rng = SmallRng::seed_from_u64(derive_seed(seed, 0x03));
    let requests = (0..len)
        .map(|_| {
            if rng.random_range(0.0..1.0f64) < p_hot {
                let a = rng.random_range(0..num_hot as u32);
                let mut b = rng.random_range(0..num_hot as u32 - 1);
                if b >= a {
                    b += 1;
                }
                Pair::new(a, b)
            } else {
                let a = rng.random_range(0..num_racks as u32);
                let mut b = rng.random_range(0..num_racks as u32 - 1);
                if b >= a {
                    b += 1;
                }
                Pair::new(a, b)
            }
        })
        .collect();
    Trace::new(
        num_racks,
        requests,
        format!("hotspot({num_hot}/{num_racks})"),
    )
}

/// I.i.d. requests where pair ranks follow a Zipf law with exponent `s` —
/// the knob for the skew-sweep ablation.
pub fn zipf_pair_trace(num_racks: usize, len: usize, s: f64, seed: u64) -> Trace {
    assert!(num_racks >= 2);
    let mut rng = SmallRng::seed_from_u64(derive_seed(seed, 0x04));
    let mut pairs: Vec<Pair> = (0..num_racks as u32)
        .flat_map(|a| ((a + 1)..num_racks as u32).map(move |b| Pair::new(a, b)))
        .collect();
    // Random rank assignment.
    for i in (1..pairs.len()).rev() {
        let j = rng.random_range(0..=i);
        pairs.swap(i, j);
    }
    let table = AliasTable::new(&zipf_weights(pairs.len(), s));
    let requests = (0..len)
        .map(|_| pairs[table.sample(&mut rng) as usize])
        .collect();
    Trace::new(num_racks, requests, format!("zipf(s={s})"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn uniform_covers_pairs_evenly() {
        let t = uniform_trace(10, 50_000, 1);
        let stats = TraceStats::compute(&t);
        assert_eq!(stats.distinct_pairs, 45);
        assert!(
            stats.pair_gini < 0.15,
            "uniform should have tiny gini, got {}",
            stats.pair_gini
        );
    }

    #[test]
    fn permutation_uses_each_rack_once() {
        let t = permutation_trace(10, 1000, 2);
        let stats = TraceStats::compute(&t);
        assert_eq!(stats.distinct_pairs, 5);
        // Every rack appears in exactly one pair.
        let mut seen = std::collections::HashSet::new();
        for r in &t.requests {
            seen.insert(r.lo());
            seen.insert(r.hi());
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn hotspot_concentrates() {
        let t = hotspot_trace(20, 50_000, 4, 0.8, 3);
        let hot_share = t.requests.iter().filter(|r| r.hi() < 4).count() as f64 / t.len() as f64;
        assert!(hot_share > 0.75, "hot share {hot_share}");
    }

    #[test]
    fn zipf_skew_monotone_in_s() {
        let g1 = TraceStats::compute(&zipf_pair_trace(15, 40_000, 0.5, 4)).pair_gini;
        let g2 = TraceStats::compute(&zipf_pair_trace(15, 40_000, 1.5, 4)).pair_gini;
        assert!(
            g2 > g1,
            "higher exponent must be more skewed ({g1} vs {g2})"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            uniform_trace(8, 100, 5).requests,
            uniform_trace(8, 100, 5).requests
        );
        assert_eq!(
            zipf_pair_trace(8, 100, 1.0, 5).requests,
            zipf_pair_trace(8, 100, 1.0, 5).requests
        );
    }

    #[test]
    #[should_panic(expected = "even rack count")]
    fn permutation_rejects_odd() {
        permutation_trace(7, 10, 0);
    }
}

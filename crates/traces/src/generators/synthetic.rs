//! Reference synthetic workloads: uniform, fixed permutation, hotspot and
//! pure-Zipf pair streams. These bracket the structured generators: uniform
//! has no structure at all (worst case for demand-aware networks),
//! permutation is the best case (a perfect matching exists), hotspot and
//! Zipf interpolate.
//!
//! Each workload is a lazy [`RequestSource`]; the `*_trace` functions are
//! thin [`RequestSource::materialize`] adapters kept for eager callers.

use crate::sampler::{zipf_weights, AliasTable};
use crate::source::{RequestSource, SeededSource, SourceKernel};
use crate::trace::Trace;
use dcn_topology::Pair;
use dcn_util::rngx::{derive_seed, shuffle};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Draws a uniform distinct pair over `0..n` — two RNG draws, matching the
/// historical eager generators draw-for-draw.
#[inline]
fn uniform_pair(rng: &mut SmallRng, n: usize) -> Pair {
    let a = rng.random_range(0..n as u32);
    let mut b = rng.random_range(0..n as u32 - 1);
    if b >= a {
        b += 1;
    }
    Pair::new(a, b)
}

/// Kernel of [`uniform_source`].
pub struct UniformKernel {
    num_racks: usize,
}

impl SourceKernel for UniformKernel {
    fn emit(&mut self, _t: usize, rng: &mut SmallRng) -> Pair {
        uniform_pair(rng, self.num_racks)
    }

    fn emit_batch(&mut self, _t0: usize, out: &mut [Pair], rng: &mut SmallRng) {
        let n = self.num_racks;
        for slot in out.iter_mut() {
            *slot = uniform_pair(rng, n);
        }
    }
}

/// Uniform i.i.d. requests over all distinct pairs, as a stream.
pub fn uniform_source(num_racks: usize, len: usize, seed: u64) -> SeededSource<UniformKernel> {
    assert!(num_racks >= 2);
    let rng = SmallRng::seed_from_u64(derive_seed(seed, 0x01));
    SeededSource::new(
        UniformKernel { num_racks },
        rng,
        len,
        num_racks,
        format!("uniform(n={num_racks})"),
    )
}

/// Uniform i.i.d. requests over all distinct pairs, materialized.
pub fn uniform_trace(num_racks: usize, len: usize, seed: u64) -> Trace {
    uniform_source(num_racks, len, seed).materialize()
}

/// Kernel of [`permutation_source`]: cycles a fixed random matching.
pub struct PermutationKernel {
    pairs: Vec<Pair>,
}

impl SourceKernel for PermutationKernel {
    fn emit(&mut self, t: usize, _rng: &mut SmallRng) -> Pair {
        self.pairs[t % self.pairs.len()]
    }
}

/// Requests cycle deterministically over a fixed random perfect-matching-like
/// permutation: rack `i` talks only to `π(i)`. The ideal case for
/// reconfigurable links — b=1 already serves everything after one
/// reconfiguration per pair.
pub fn permutation_source(
    num_racks: usize,
    len: usize,
    seed: u64,
) -> SeededSource<PermutationKernel> {
    assert!(
        num_racks >= 2 && num_racks.is_multiple_of(2),
        "permutation trace needs an even rack count"
    );
    let mut rng = SmallRng::seed_from_u64(derive_seed(seed, 0x02));
    let mut racks: Vec<u32> = (0..num_racks as u32).collect();
    shuffle(&mut racks, &mut rng);
    let pairs: Vec<Pair> = racks
        .chunks_exact(2)
        .map(|c| Pair::new(c[0], c[1]))
        .collect();
    SeededSource::new(
        PermutationKernel { pairs },
        rng,
        len,
        num_racks,
        format!("permutation(n={num_racks})"),
    )
}

/// Materialized [`permutation_source`].
pub fn permutation_trace(num_racks: usize, len: usize, seed: u64) -> Trace {
    permutation_source(num_racks, len, seed).materialize()
}

/// Kernel of [`hotspot_source`].
pub struct HotspotKernel {
    num_racks: usize,
    num_hot: usize,
    p_hot: f64,
}

impl SourceKernel for HotspotKernel {
    fn emit(&mut self, _t: usize, rng: &mut SmallRng) -> Pair {
        if rng.random_range(0.0..1.0f64) < self.p_hot {
            uniform_pair(rng, self.num_hot)
        } else {
            uniform_pair(rng, self.num_racks)
        }
    }
}

/// A few hot racks exchange most of the traffic; the rest is uniform noise.
pub fn hotspot_source(
    num_racks: usize,
    len: usize,
    num_hot: usize,
    p_hot: f64,
    seed: u64,
) -> SeededSource<HotspotKernel> {
    assert!(num_racks >= 4 && num_hot >= 2 && num_hot <= num_racks);
    assert!((0.0..=1.0).contains(&p_hot));
    let rng = SmallRng::seed_from_u64(derive_seed(seed, 0x03));
    SeededSource::new(
        HotspotKernel {
            num_racks,
            num_hot,
            p_hot,
        },
        rng,
        len,
        num_racks,
        format!("hotspot({num_hot}/{num_racks})"),
    )
}

/// Materialized [`hotspot_source`].
pub fn hotspot_trace(num_racks: usize, len: usize, num_hot: usize, p_hot: f64, seed: u64) -> Trace {
    hotspot_source(num_racks, len, num_hot, p_hot, seed).materialize()
}

/// Kernel of [`zipf_pair_source`].
pub struct ZipfKernel {
    pairs: Vec<Pair>,
    table: AliasTable,
}

impl SourceKernel for ZipfKernel {
    fn emit(&mut self, _t: usize, rng: &mut SmallRng) -> Pair {
        self.pairs[self.table.sample(rng) as usize]
    }

    fn emit_batch(&mut self, _t0: usize, out: &mut [Pair], rng: &mut SmallRng) {
        let (pairs, table) = (self.pairs.as_slice(), &self.table);
        for slot in out.iter_mut() {
            *slot = pairs[table.sample(rng) as usize];
        }
    }
}

/// I.i.d. requests where pair ranks follow a Zipf law with exponent `s` —
/// the knob for the skew-sweep ablation. Setup is O(num_racks²) (the pair
/// alias table); the stream itself is O(1) per request.
pub fn zipf_pair_source(
    num_racks: usize,
    len: usize,
    s: f64,
    seed: u64,
) -> SeededSource<ZipfKernel> {
    assert!(num_racks >= 2);
    let mut rng = SmallRng::seed_from_u64(derive_seed(seed, 0x04));
    let mut pairs: Vec<Pair> = (0..num_racks as u32)
        .flat_map(|a| ((a + 1)..num_racks as u32).map(move |b| Pair::new(a, b)))
        .collect();
    // Random rank assignment.
    shuffle(&mut pairs, &mut rng);
    let table = AliasTable::new(&zipf_weights(pairs.len(), s));
    SeededSource::new(
        ZipfKernel { pairs, table },
        rng,
        len,
        num_racks,
        format!("zipf(s={s}, n={num_racks})"),
    )
}

/// Materialized [`zipf_pair_source`].
pub fn zipf_pair_trace(num_racks: usize, len: usize, s: f64, seed: u64) -> Trace {
    zipf_pair_source(num_racks, len, s, seed).materialize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn uniform_covers_pairs_evenly() {
        let t = uniform_trace(10, 50_000, 1);
        let stats = TraceStats::compute(&t);
        assert_eq!(stats.distinct_pairs, 45);
        assert!(
            stats.pair_gini < 0.15,
            "uniform should have tiny gini, got {}",
            stats.pair_gini
        );
    }

    #[test]
    fn permutation_uses_each_rack_once() {
        let t = permutation_trace(10, 1000, 2);
        let stats = TraceStats::compute(&t);
        assert_eq!(stats.distinct_pairs, 5);
        // Every rack appears in exactly one pair.
        let mut seen = std::collections::HashSet::new();
        for r in &t.requests {
            seen.insert(r.lo());
            seen.insert(r.hi());
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn hotspot_concentrates() {
        let t = hotspot_trace(20, 50_000, 4, 0.8, 3);
        let hot_share = t.requests.iter().filter(|r| r.hi() < 4).count() as f64 / t.len() as f64;
        assert!(hot_share > 0.75, "hot share {hot_share}");
    }

    #[test]
    fn zipf_skew_monotone_in_s() {
        let g1 = TraceStats::compute(&zipf_pair_trace(15, 40_000, 0.5, 4)).pair_gini;
        let g2 = TraceStats::compute(&zipf_pair_trace(15, 40_000, 1.5, 4)).pair_gini;
        assert!(
            g2 > g1,
            "higher exponent must be more skewed ({g1} vs {g2})"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            uniform_trace(8, 100, 5).requests,
            uniform_trace(8, 100, 5).requests
        );
        assert_eq!(
            zipf_pair_trace(8, 100, 1.0, 5).requests,
            zipf_pair_trace(8, 100, 1.0, 5).requests
        );
    }

    #[test]
    #[should_panic(expected = "even rack count")]
    fn permutation_rejects_odd() {
        permutation_trace(7, 10, 0);
    }
}

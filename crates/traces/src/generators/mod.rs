//! Workload generators: Facebook-like clusters, Microsoft-like traffic
//! matrices, synthetic references and adversarial sequences.

pub mod adversarial;
pub mod facebook;
pub mod microsoft;
pub mod synthetic;

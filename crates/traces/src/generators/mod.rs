//! Workload generators: Facebook-like clusters, Microsoft-like traffic
//! matrices, generic demand-matrix kernels, synthetic references and
//! adversarial sequences.

pub mod adversarial;
pub mod demand;
pub mod facebook;
pub mod genome;
pub mod microsoft;
pub mod synthetic;

//! Microsoft-like workload (substitute for the ProjecToR \[32\] rack-to-rack
//! probability matrix used in the paper's Fig. 4).
//!
//! The paper itself *generates* its Microsoft trace by sampling i.i.d. from
//! a probability matrix: “In order to generate a trace, we sample from this
//! distribution i.i.d. Hence, this trace does not contain any temporal
//! structure by design. However, it is known that it contains significant
//! spatial structure (i.e., is skewed).” We reproduce exactly that recipe
//! with a synthetic matrix of the same character: heavy-tailed pair weights
//! (product of Zipf rack popularities with log-normal-style noise), i.i.d.
//! sampling, no temporal correlation.
//!
//! The matrix construction itself lives in `dcn-demand`
//! ([`dcn_demand::microsoft_pair_weights`] /
//! [`dcn_demand::DemandMatrix::microsoft`]); this module is the thin trace
//! preset over it. The kernel is the generic [`MatrixKernel`], fed the
//! historical `(pairs, weights)` construction order so seeded streams are
//! byte-identical to what this generator produced before the demand layer
//! existed (pinned by `tests/stream_equivalence.rs`).

use crate::generators::demand::MatrixKernel;
use crate::source::{RequestSource, SeededSource};
use crate::trace::Trace;
use dcn_topology::Pair;
use dcn_util::rngx::derive_seed;
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub use dcn_demand::{microsoft_pair_weights, MicrosoftParams};

/// Kernel of [`microsoft_source`]: i.i.d. alias-table sampling from the
/// frozen traffic matrix (the generic matrix kernel over the historical
/// weight ordering).
pub type MicrosoftKernel = MatrixKernel;

/// Builds the synthetic rack-to-rack weight matrix (upper triangle, indexed
/// by pair) and returns `(pairs, weights)` — kept as an adapter over
/// [`dcn_demand::microsoft_pair_weights`] for callers of the historical
/// API; [`dcn_demand::DemandMatrix::microsoft`] is the dense-matrix view of
/// the same construction.
pub fn microsoft_matrix(
    num_racks: usize,
    params: MicrosoftParams,
    seed: u64,
) -> (Vec<Pair>, Vec<f64>) {
    microsoft_pair_weights(num_racks, params, seed)
}

/// An i.i.d. stream of `len` requests over `num_racks` racks. Setup builds
/// the O(num_racks²) matrix once; the stream is O(1) per request and O(1)
/// memory in `len`.
pub fn microsoft_source(
    num_racks: usize,
    len: usize,
    params: MicrosoftParams,
    seed: u64,
) -> SeededSource<MicrosoftKernel> {
    let (pairs, weights) = microsoft_pair_weights(num_racks, params, seed);
    let kernel = MatrixKernel::from_weighted_pairs(pairs, &weights);
    let rng = SmallRng::seed_from_u64(derive_seed(seed, 0x7154));
    SeededSource::new(
        kernel,
        rng,
        len,
        num_racks,
        format!("microsoft(n={num_racks})"),
    )
}

/// Generates an i.i.d. trace of `len` requests over `num_racks` racks
/// (materialized [`microsoft_source`]).
pub fn microsoft_trace(num_racks: usize, len: usize, params: MicrosoftParams, seed: u64) -> Trace {
    microsoft_source(num_racks, len, params, seed).materialize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn deterministic_and_in_range() {
        let a = microsoft_trace(20, 10_000, MicrosoftParams::default(), 4);
        let b = microsoft_trace(20, 10_000, MicrosoftParams::default(), 4);
        assert_eq!(a.requests, b.requests);
        for r in &a.requests {
            assert!((r.hi() as usize) < 20);
        }
    }

    #[test]
    fn spatially_skewed() {
        let t = microsoft_trace(50, 100_000, MicrosoftParams::default(), 9);
        let gini = TraceStats::compute(&t).pair_gini;
        assert!(gini > 0.5, "traffic matrix should be skewed, gini {gini}");
    }

    #[test]
    fn no_temporal_structure() {
        // The canonical test: randomly permuting an i.i.d. trace leaves its
        // reuse-distance profile unchanged (there is no temporal structure
        // to destroy), whereas permuting a bursty trace inflates it.
        fn shuffled_ratio(trace: &crate::trace::Trace, seed: u64) -> f64 {
            use rand::rngs::SmallRng;
            use rand::{RngExt, SeedableRng};
            let before = TraceStats::compute(trace).median_reuse_distance;
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut shuffled = trace.clone();
            for i in (1..shuffled.requests.len()).rev() {
                let j = rng.random_range(0..=i);
                shuffled.requests.swap(i, j);
            }
            TraceStats::compute(&shuffled).median_reuse_distance / before
        }
        let iid = microsoft_trace(50, 50_000, MicrosoftParams::default(), 2);
        let iid_ratio = shuffled_ratio(&iid, 1);
        assert!(
            (0.6..=1.6).contains(&iid_ratio),
            "shuffling an i.i.d. trace should not change reuse (ratio {iid_ratio})"
        );
        let bursty = crate::generators::facebook::facebook_cluster_trace(
            crate::generators::facebook::FacebookCluster::Database,
            50,
            50_000,
            2,
        );
        let bursty_ratio = shuffled_ratio(&bursty, 1);
        assert!(
            bursty_ratio > 1.5,
            "shuffling a bursty trace should inflate reuse distances (ratio {bursty_ratio})"
        );
    }

    #[test]
    fn matrix_covers_all_pairs() {
        let (pairs, weights) = microsoft_matrix(10, MicrosoftParams::default(), 1);
        assert_eq!(pairs.len(), 45);
        assert_eq!(weights.len(), 45);
        assert!(weights.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn dense_matrix_view_agrees_with_sampling_arrays() {
        // The DemandMatrix built for demand-aware baselines and the arrays
        // the sampler consumes describe the same distribution.
        let params = MicrosoftParams::default();
        let (pairs, weights) = microsoft_matrix(12, params, 6);
        let dense = dcn_demand::DemandMatrix::microsoft(12, params, 6);
        for (&pair, &w) in pairs.iter().zip(&weights) {
            assert_eq!(dense.get(pair), w);
        }
    }
}

//! Microsoft-like workload (substitute for the ProjecToR \[32\] rack-to-rack
//! probability matrix used in the paper's Fig. 4).
//!
//! The paper itself *generates* its Microsoft trace by sampling i.i.d. from
//! a probability matrix: “In order to generate a trace, we sample from this
//! distribution i.i.d. Hence, this trace does not contain any temporal
//! structure by design. However, it is known that it contains significant
//! spatial structure (i.e., is skewed).” We reproduce exactly that recipe
//! with a synthetic matrix of the same character: heavy-tailed pair weights
//! (product of Zipf rack popularities with log-normal-style noise), i.i.d.
//! sampling, no temporal correlation.

use crate::sampler::{zipf_weights, AliasTable};
use crate::source::{RequestSource, SeededSource, SourceKernel};
use crate::trace::Trace;
use dcn_topology::Pair;
use dcn_util::rngx::derive_seed;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Parameters of the synthetic traffic matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MicrosoftParams {
    /// Zipf exponent of rack popularity (drives the spatial skew).
    pub rack_skew: f64,
    /// Standard deviation of multiplicative log-noise on each pair weight.
    pub noise_sigma: f64,
}

impl Default for MicrosoftParams {
    fn default() -> Self {
        Self {
            rack_skew: 1.1,
            noise_sigma: 1.0,
        }
    }
}

/// Builds the synthetic rack-to-rack weight matrix (upper triangle, indexed
/// by pair) and returns `(pairs, weights)`.
pub fn microsoft_matrix(
    num_racks: usize,
    params: MicrosoftParams,
    seed: u64,
) -> (Vec<Pair>, Vec<f64>) {
    assert!(num_racks >= 2);
    let mut rng = SmallRng::seed_from_u64(derive_seed(seed, 0x7153));
    let mut perm: Vec<u32> = (0..num_racks as u32).collect();
    for i in (1..perm.len()).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    let pop = zipf_weights(num_racks, params.rack_skew);
    let mut pairs = Vec::with_capacity(num_racks * (num_racks - 1) / 2);
    let mut weights = Vec::with_capacity(pairs.capacity());
    for i in 0..num_racks {
        for j in (i + 1)..num_racks {
            // Box-Muller-free log-noise: sum of uniforms approximates a
            // normal well enough for a heavy-ish tail here.
            let g: f64 = (0..4).map(|_| rng.random_range(-1.0..1.0f64)).sum::<f64>() * 0.5;
            let noise = (params.noise_sigma * g).exp();
            pairs.push(Pair::new(perm[i], perm[j]));
            weights.push(pop[i] * pop[j] * noise);
        }
    }
    (pairs, weights)
}

/// Kernel of [`microsoft_source`]: i.i.d. alias-table sampling from the
/// frozen traffic matrix.
pub struct MicrosoftKernel {
    pairs: Vec<Pair>,
    table: AliasTable,
}

impl SourceKernel for MicrosoftKernel {
    fn emit(&mut self, _t: usize, rng: &mut SmallRng) -> Pair {
        self.pairs[self.table.sample(rng) as usize]
    }
}

/// An i.i.d. stream of `len` requests over `num_racks` racks. Setup builds
/// the O(num_racks²) matrix once; the stream is O(1) per request and O(1)
/// memory in `len`.
pub fn microsoft_source(
    num_racks: usize,
    len: usize,
    params: MicrosoftParams,
    seed: u64,
) -> SeededSource<MicrosoftKernel> {
    let (pairs, weights) = microsoft_matrix(num_racks, params, seed);
    let table = AliasTable::new(&weights);
    let rng = SmallRng::seed_from_u64(derive_seed(seed, 0x7154));
    SeededSource::new(
        MicrosoftKernel { pairs, table },
        rng,
        len,
        num_racks,
        format!("microsoft(n={num_racks})"),
    )
}

/// Generates an i.i.d. trace of `len` requests over `num_racks` racks
/// (materialized [`microsoft_source`]).
pub fn microsoft_trace(num_racks: usize, len: usize, params: MicrosoftParams, seed: u64) -> Trace {
    microsoft_source(num_racks, len, params, seed).materialize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn deterministic_and_in_range() {
        let a = microsoft_trace(20, 10_000, MicrosoftParams::default(), 4);
        let b = microsoft_trace(20, 10_000, MicrosoftParams::default(), 4);
        assert_eq!(a.requests, b.requests);
        for r in &a.requests {
            assert!((r.hi() as usize) < 20);
        }
    }

    #[test]
    fn spatially_skewed() {
        let t = microsoft_trace(50, 100_000, MicrosoftParams::default(), 9);
        let gini = TraceStats::compute(&t).pair_gini;
        assert!(gini > 0.5, "traffic matrix should be skewed, gini {gini}");
    }

    #[test]
    fn no_temporal_structure() {
        // The canonical test: randomly permuting an i.i.d. trace leaves its
        // reuse-distance profile unchanged (there is no temporal structure
        // to destroy), whereas permuting a bursty trace inflates it.
        fn shuffled_ratio(trace: &crate::trace::Trace, seed: u64) -> f64 {
            use rand::rngs::SmallRng;
            use rand::{RngExt, SeedableRng};
            let before = TraceStats::compute(trace).median_reuse_distance;
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut shuffled = trace.clone();
            for i in (1..shuffled.requests.len()).rev() {
                let j = rng.random_range(0..=i);
                shuffled.requests.swap(i, j);
            }
            TraceStats::compute(&shuffled).median_reuse_distance / before
        }
        let iid = microsoft_trace(50, 50_000, MicrosoftParams::default(), 2);
        let iid_ratio = shuffled_ratio(&iid, 1);
        assert!(
            (0.6..=1.6).contains(&iid_ratio),
            "shuffling an i.i.d. trace should not change reuse (ratio {iid_ratio})"
        );
        let bursty = crate::generators::facebook::facebook_cluster_trace(
            crate::generators::facebook::FacebookCluster::Database,
            50,
            50_000,
            2,
        );
        let bursty_ratio = shuffled_ratio(&bursty, 1);
        assert!(
            bursty_ratio > 1.5,
            "shuffling a bursty trace should inflate reuse distances (ratio {bursty_ratio})"
        );
    }

    #[test]
    fn matrix_covers_all_pairs() {
        let (pairs, weights) = microsoft_matrix(10, MicrosoftParams::default(), 1);
        assert_eq!(pairs.len(), 45);
        assert_eq!(weights.len(), 45);
        assert!(weights.iter().all(|&w| w > 0.0));
    }
}

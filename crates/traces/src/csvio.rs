//! CSV persistence for traces, so real-world traces (e.g. the actual
//! Facebook dataset, for users who have access) can be fed to the simulator.
//!
//! Format: a header line `src,dst` followed by one request per line.

use crate::trace::Trace;
use dcn_topology::Pair;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes `trace` as CSV.
pub fn write_trace<W: Write>(trace: &Trace, out: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "src,dst")?;
    for r in &trace.requests {
        writeln!(w, "{},{}", r.lo(), r.hi())?;
    }
    w.flush()
}

/// Reads a CSV trace; `num_racks` is inferred as `max endpoint + 1` unless
/// `racks_hint` provides a larger value.
pub fn read_trace<R: Read>(
    input: R,
    name: &str,
    racks_hint: Option<usize>,
) -> std::io::Result<Trace> {
    let reader = BufReader::new(input);
    let mut requests: Vec<Pair> = Vec::new();
    let mut max_rack = 0u32;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || (lineno == 0 && line.eq_ignore_ascii_case("src,dst")) {
            continue;
        }
        let mut parts = line.split(',');
        let parse = |p: Option<&str>| -> std::io::Result<u32> {
            p.ok_or_else(|| bad_data(lineno, line))?
                .trim()
                .parse::<u32>()
                .map_err(|_| bad_data(lineno, line))
        };
        let src = parse(parts.next())?;
        let dst = parse(parts.next())?;
        if src == dst {
            return Err(bad_data(lineno, line));
        }
        max_rack = max_rack.max(src).max(dst);
        requests.push(Pair::new(src, dst));
    }
    let n = racks_hint.unwrap_or(0).max(max_rack as usize + 1);
    Ok(Trace::new(n, requests, name))
}

/// Convenience: write to a file path.
pub fn save_trace(trace: &Trace, path: &Path) -> std::io::Result<()> {
    write_trace(trace, std::fs::File::create(path)?)
}

/// Convenience: read from a file path.
pub fn load_trace(path: &Path, racks_hint: Option<usize>) -> std::io::Result<Trace> {
    read_trace(
        std::fs::File::open(path)?,
        &path.display().to_string(),
        racks_hint,
    )
}

fn bad_data(lineno: usize, line: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("malformed trace line {}: {line:?}", lineno + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::synthetic::uniform_trace;

    #[test]
    fn roundtrip() {
        let t = uniform_trace(12, 500, 3);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(buf.as_slice(), "t", Some(12)).unwrap();
        assert_eq!(back.num_racks, 12);
        assert_eq!(back.requests, t.requests);
    }

    #[test]
    fn header_and_blank_lines_skipped() {
        let csv = "src,dst\n0,1\n\n2,3\n";
        let t = read_trace(csv.as_bytes(), "t", None).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.num_racks, 4);
    }

    #[test]
    fn rejects_malformed() {
        assert!(read_trace("src,dst\n0\n".as_bytes(), "t", None).is_err());
        assert!(read_trace("src,dst\nx,y\n".as_bytes(), "t", None).is_err());
        assert!(
            read_trace("src,dst\n3,3\n".as_bytes(), "t", None).is_err(),
            "self-loop"
        );
    }

    #[test]
    fn racks_hint_extends() {
        let t = read_trace("0,1\n".as_bytes(), "t", Some(50)).unwrap();
        assert_eq!(t.num_racks, 50);
    }
}

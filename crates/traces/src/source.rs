//! Streaming request sources: seeded, resettable, lazily-generated request
//! streams with O(1) memory in the request count.
//!
//! The paper's experiments replay a few hundred thousand requests, so a
//! materialized `Vec<Pair>` is fine there — but at production scale
//! (millions to tens of millions of requests, swept over trace-seed ×
//! algorithm-seed grids) the materialized trace, not the algorithm, caps
//! the workload size. Every generator in this crate therefore produces a
//! [`RequestSource`]: the request at position `t` is computed on demand from
//! a seeded RNG stream, the source can be [`reset`](RequestSource::reset)
//! to replay the identical sequence, and
//! [`materialize`](RequestSource::materialize) recovers the old eager
//! [`Trace`] when a slice really is needed (offline baselines, statistics).
//!
//! Determinism contract: for a fixed constructor input, the streamed
//! sequence is **byte-identical** to what the eager `*_trace` functions
//! returned before this layer existed — the seeded xoshiro256++ draws happen
//! in exactly the same order, only lazily. Tests in
//! `tests/stream_equivalence.rs` pin this down for every generator.
//!
//! [`TraceSpec`] is the serializable-by-value description of a workload
//! (generator + parameters + trace seed) that sweep jobs carry, so each
//! worker can synthesize its own stream in-place instead of sharing one
//! pre-built trace.

use crate::generators::adversarial::{star_round_robin_source, star_uniform_source};
use crate::generators::demand::{matrix_source, sequence_source};
use crate::generators::facebook::{facebook_cluster_source, FacebookCluster};
use crate::generators::microsoft::{microsoft_source, MicrosoftParams};
use crate::generators::synthetic::{
    hotspot_source, permutation_source, uniform_source, zipf_pair_source,
};
use crate::trace::Trace;
use dcn_demand::{DemandMatrix, MatrixSequence};
use dcn_topology::Pair;
use rand::rngs::SmallRng;
use std::borrow::Cow;
use std::sync::Arc;

/// A seeded, resettable, finite stream of rack-pair requests.
///
/// Implementations hold O(1) state in the stream length (setup structures
/// like alias tables scale with the rack count only), so arbitrarily long
/// workloads can be simulated without materializing them.
pub trait RequestSource {
    /// Number of racks (`|V|`); every emitted endpoint is `< num_racks`.
    fn num_racks(&self) -> usize;

    /// Total number of requests this source yields per replay.
    fn len(&self) -> usize;

    /// Whether the stream is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests not yet emitted since construction or the last
    /// [`reset`](Self::reset).
    fn remaining(&self) -> usize;

    /// Human-readable provenance for reports (matches the materialized
    /// [`Trace::name`]).
    fn name(&self) -> &str;

    /// Emits the next request, or `None` once `len()` requests were emitted.
    fn next_request(&mut self) -> Option<Pair>;

    /// Fills `buf` from the stream's current position and returns the number
    /// of requests written (short only at the end of the stream).
    ///
    /// This is the batch entry point of the serve pipeline: semantically it
    /// is exactly `buf.len()` calls to [`next_request`](Self::next_request)
    /// (the same seeded draws in the same order — pinned by a proptest in
    /// `tests/stream_equivalence.rs` over arbitrary batch-size schedules),
    /// but implementations amortize per-request overhead across the batch:
    /// [`SeededSource`] dispatches once into
    /// [`SourceKernel::emit_batch`], and [`MaterializedSource`] degenerates
    /// to a `memcpy`.
    fn fill(&mut self, buf: &mut [Pair]) -> usize {
        let mut written = 0;
        while written < buf.len() {
            match self.next_request() {
                Some(p) => {
                    buf[written] = p;
                    written += 1;
                }
                None => break,
            }
        }
        written
    }

    /// Rewinds to the start; the subsequent replay is identical to the
    /// first.
    fn reset(&mut self);

    /// Collects the whole stream (from the start, regardless of current
    /// position) into an eager [`Trace`], then resets so the source remains
    /// reusable.
    fn materialize(&mut self) -> Trace {
        self.reset();
        let mut requests = Vec::with_capacity(self.len());
        while let Some(p) = self.next_request() {
            requests.push(p);
        }
        let trace = Trace::new(self.num_racks(), requests, self.name().to_string());
        self.reset();
        trace
    }
}

/// Borrowing iterator over a source's remaining requests (exact-size, so the
/// simulator can lay out its checkpoint grid up front).
///
/// The length is captured **once** at construction and counted down locally,
/// so `len()`/`size_hint()` never re-consult
/// [`RequestSource::remaining`] — callers that lay out grids from the
/// iterator length and then drain it see one consistent total.
pub struct SourceIter<'a, S: ?Sized> {
    source: &'a mut S,
    remaining: usize,
}

impl<'a, S: RequestSource + ?Sized> SourceIter<'a, S> {
    /// Iterates `source` from its current position to the end.
    pub fn new(source: &'a mut S) -> Self {
        let remaining = source.remaining();
        Self { source, remaining }
    }
}

impl<S: RequestSource + ?Sized> Iterator for SourceIter<'_, S> {
    type Item = Pair;

    fn next(&mut self) -> Option<Pair> {
        let p = self.source.next_request();
        if p.is_some() {
            self.remaining = self.remaining.saturating_sub(1);
        }
        p
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<S: RequestSource + ?Sized> ExactSizeIterator for SourceIter<'_, S> {}

/// The per-request generation rule of a [`SeededSource`]: everything a
/// generator does *after* its seeded setup phase.
///
/// `emit` is called exactly once per position `t = 0, 1, …` with the
/// generator's RNG (already advanced past setup); `reset_state` clears any
/// cross-request state (working sets, current block) — the RNG rewind is
/// handled by [`SeededSource`].
pub trait SourceKernel {
    /// Produces the request at position `t`.
    fn emit(&mut self, t: usize, rng: &mut SmallRng) -> Pair;

    /// Produces the requests at positions `t0..t0 + out.len()` into `out`.
    ///
    /// Must be draw-for-draw identical to calling [`emit`](Self::emit) once
    /// per position; the default does exactly that. Hot kernels override it
    /// to hoist per-request setup (alias-table/pair-slice borrows, phase
    /// lookups) out of the inner loop.
    fn emit_batch(&mut self, t0: usize, out: &mut [Pair], rng: &mut SmallRng) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.emit(t0 + i, rng);
        }
    }

    /// Clears mutable cross-request state for a replay.
    fn reset_state(&mut self) {}
}

/// Generic [`RequestSource`] driving a [`SourceKernel`] with a seeded RNG.
///
/// Stores the post-setup RNG state so [`reset`](RequestSource::reset) can
/// rewind without repeating the (possibly expensive) setup phase.
pub struct SeededSource<K> {
    kernel: K,
    rng: SmallRng,
    start_rng: SmallRng,
    pos: usize,
    len: usize,
    num_racks: usize,
    name: String,
}

impl<K: SourceKernel> SeededSource<K> {
    /// Wraps a kernel; `rng` must be positioned exactly where the eager
    /// generator's per-request loop would start (i.e. after setup draws).
    pub fn new(kernel: K, rng: SmallRng, len: usize, num_racks: usize, name: String) -> Self {
        Self {
            kernel,
            start_rng: rng.clone(),
            rng,
            pos: 0,
            len,
            num_racks,
            name,
        }
    }

    /// Overrides the report name (e.g. cluster presets).
    pub fn with_name(mut self, name: String) -> Self {
        self.name = name;
        self
    }
}

impl<K: SourceKernel> RequestSource for SeededSource<K> {
    fn num_racks(&self) -> usize {
        self.num_racks
    }

    fn len(&self) -> usize {
        self.len
    }

    fn remaining(&self) -> usize {
        self.len - self.pos
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_request(&mut self) -> Option<Pair> {
        if self.pos == self.len {
            return None;
        }
        let pair = self.kernel.emit(self.pos, &mut self.rng);
        debug_assert!((pair.hi() as usize) < self.num_racks, "endpoint in range");
        self.pos += 1;
        Some(pair)
    }

    fn fill(&mut self, buf: &mut [Pair]) -> usize {
        let n = buf.len().min(self.len - self.pos);
        self.kernel
            .emit_batch(self.pos, &mut buf[..n], &mut self.rng);
        debug_assert!(
            buf[..n].iter().all(|p| (p.hi() as usize) < self.num_racks),
            "endpoint in range"
        );
        self.pos += n;
        n
    }

    fn reset(&mut self) {
        self.rng = self.start_rng.clone();
        self.kernel.reset_state();
        self.pos = 0;
    }
}

/// A [`RequestSource`] replaying an already-materialized [`Trace`] (e.g.
/// loaded from CSV) — the adapter that lets real-world traces flow through
/// the streaming pipeline. Shares the trace via `Arc`, so cloning specs is
/// cheap.
#[derive(Clone, Debug)]
pub struct MaterializedSource {
    trace: Arc<Trace>,
    pos: usize,
}

impl MaterializedSource {
    /// Streams `trace` from the start.
    pub fn new(trace: Arc<Trace>) -> Self {
        Self { trace, pos: 0 }
    }
}

impl From<Trace> for MaterializedSource {
    fn from(trace: Trace) -> Self {
        Self::new(Arc::new(trace))
    }
}

impl RequestSource for MaterializedSource {
    fn num_racks(&self) -> usize {
        self.trace.num_racks
    }

    fn len(&self) -> usize {
        self.trace.requests.len()
    }

    fn remaining(&self) -> usize {
        self.trace.requests.len() - self.pos
    }

    fn name(&self) -> &str {
        &self.trace.name
    }

    fn next_request(&mut self) -> Option<Pair> {
        let p = self.trace.requests.get(self.pos).copied();
        self.pos += (p.is_some()) as usize;
        p
    }

    fn fill(&mut self, buf: &mut [Pair]) -> usize {
        let n = buf.len().min(self.trace.requests.len() - self.pos);
        buf[..n].copy_from_slice(&self.trace.requests[self.pos..self.pos + n]);
        self.pos += n;
        n
    }

    fn reset(&mut self) {
        self.pos = 0;
    }
}

/// Value-level description of a workload: which generator, its parameters,
/// and the trace seed. Sweep jobs carry one of these so every worker can
/// synthesize its own stream in-place — no shared pre-built trace, and
/// (trace-seed × algorithm-seed) grids fall out of [`TraceSpec::with_seed`].
#[derive(Clone, Debug, PartialEq)]
pub enum TraceSpec {
    /// Uniform i.i.d. pairs ([`crate::generators::synthetic::uniform_source`]).
    Uniform {
        /// Number of racks.
        num_racks: usize,
        /// Stream length.
        len: usize,
        /// Trace seed.
        seed: u64,
    },
    /// Fixed random perfect matching, cycled
    /// ([`crate::generators::synthetic::permutation_source`]).
    Permutation {
        /// Number of racks (must be even).
        num_racks: usize,
        /// Stream length.
        len: usize,
        /// Trace seed.
        seed: u64,
    },
    /// Hot-rack traffic with uniform background
    /// ([`crate::generators::synthetic::hotspot_source`]).
    Hotspot {
        /// Number of racks.
        num_racks: usize,
        /// Stream length.
        len: usize,
        /// Number of hot racks.
        num_hot: usize,
        /// Probability a request stays among hot racks.
        p_hot: f64,
        /// Trace seed.
        seed: u64,
    },
    /// Zipf-ranked pair popularity
    /// ([`crate::generators::synthetic::zipf_pair_source`]).
    Zipf {
        /// Number of racks.
        num_racks: usize,
        /// Stream length.
        len: usize,
        /// Zipf exponent `s`.
        exponent: f64,
        /// Trace seed.
        seed: u64,
    },
    /// Facebook cluster preset
    /// ([`crate::generators::facebook::facebook_cluster_source`]).
    Facebook {
        /// Which cluster preset.
        cluster: FacebookCluster,
        /// Number of racks.
        num_racks: usize,
        /// Stream length.
        len: usize,
        /// Trace seed.
        seed: u64,
    },
    /// Microsoft i.i.d. matrix sampling
    /// ([`crate::generators::microsoft::microsoft_source`]).
    Microsoft {
        /// Number of racks.
        num_racks: usize,
        /// Stream length.
        len: usize,
        /// Traffic-matrix parameters.
        params: MicrosoftParams,
        /// Trace seed.
        seed: u64,
    },
    /// §2.4 star nemesis, uniform blocks
    /// ([`crate::generators::adversarial::star_uniform_source`]).
    StarUniform {
        /// Number of spokes (racks are `0..=spokes`, hub 0).
        spokes: usize,
        /// Block length α.
        alpha: usize,
        /// Number of blocks.
        num_blocks: usize,
        /// Trace seed.
        seed: u64,
    },
    /// §2.4 star nemesis, deterministic round-robin blocks
    /// ([`crate::generators::adversarial::star_round_robin_source`]).
    StarRoundRobin {
        /// Number of spokes.
        spokes: usize,
        /// Block length α.
        alpha: usize,
        /// Number of blocks.
        num_blocks: usize,
    },
    /// I.i.d. sampling from an explicit demand matrix
    /// ([`crate::generators::demand::matrix_source`]).
    Matrix {
        /// The demand matrix (shared, so cloning specs is cheap).
        matrix: Arc<DemandMatrix>,
        /// Stream length.
        len: usize,
        /// Trace seed.
        seed: u64,
    },
    /// Phase-scheduled sampling from a matrix sequence
    /// ([`crate::generators::demand::sequence_source`]); the stream length
    /// is the sequence's total length.
    Sequence {
        /// The matrix sequence (shared, so cloning specs is cheap).
        sequence: Arc<MatrixSequence>,
        /// Trace seed.
        seed: u64,
    },
    /// An already-materialized trace (CSV imports, hand-built tests).
    Materialized(Arc<Trace>),
}

impl TraceSpec {
    /// Wraps an eager trace.
    pub fn materialized(trace: Trace) -> Self {
        TraceSpec::Materialized(Arc::new(trace))
    }

    /// Wraps a demand matrix for i.i.d. sampling.
    pub fn matrix(matrix: DemandMatrix, len: usize, seed: u64) -> Self {
        TraceSpec::Matrix {
            matrix: Arc::new(matrix),
            len,
            seed,
        }
    }

    /// Wraps a matrix sequence.
    pub fn sequence(sequence: MatrixSequence, seed: u64) -> Self {
        TraceSpec::Sequence {
            sequence: Arc::new(sequence),
            seed,
        }
    }

    /// Instantiates the stream described by this spec.
    pub fn source(&self) -> Box<dyn RequestSource + Send> {
        match *self {
            TraceSpec::Uniform {
                num_racks,
                len,
                seed,
            } => Box::new(uniform_source(num_racks, len, seed)),
            TraceSpec::Permutation {
                num_racks,
                len,
                seed,
            } => Box::new(permutation_source(num_racks, len, seed)),
            TraceSpec::Hotspot {
                num_racks,
                len,
                num_hot,
                p_hot,
                seed,
            } => Box::new(hotspot_source(num_racks, len, num_hot, p_hot, seed)),
            TraceSpec::Zipf {
                num_racks,
                len,
                exponent,
                seed,
            } => Box::new(zipf_pair_source(num_racks, len, exponent, seed)),
            TraceSpec::Facebook {
                cluster,
                num_racks,
                len,
                seed,
            } => Box::new(facebook_cluster_source(cluster, num_racks, len, seed)),
            TraceSpec::Microsoft {
                num_racks,
                len,
                params,
                seed,
            } => Box::new(microsoft_source(num_racks, len, params, seed)),
            TraceSpec::StarUniform {
                spokes,
                alpha,
                num_blocks,
                seed,
            } => Box::new(star_uniform_source(spokes, alpha, num_blocks, seed)),
            TraceSpec::StarRoundRobin {
                spokes,
                alpha,
                num_blocks,
            } => Box::new(star_round_robin_source(spokes, alpha, num_blocks)),
            TraceSpec::Matrix {
                ref matrix,
                len,
                seed,
            } => Box::new(matrix_source(matrix, len, seed)),
            TraceSpec::Sequence { ref sequence, seed } => Box::new(sequence_source(sequence, seed)),
            TraceSpec::Materialized(ref t) => Box::new(MaterializedSource::new(Arc::clone(t))),
        }
    }

    /// Stream length without instantiating the source.
    pub fn len(&self) -> usize {
        match *self {
            TraceSpec::Uniform { len, .. }
            | TraceSpec::Permutation { len, .. }
            | TraceSpec::Hotspot { len, .. }
            | TraceSpec::Zipf { len, .. }
            | TraceSpec::Facebook { len, .. }
            | TraceSpec::Microsoft { len, .. }
            | TraceSpec::Matrix { len, .. } => len,
            TraceSpec::StarUniform {
                alpha, num_blocks, ..
            }
            | TraceSpec::StarRoundRobin {
                alpha, num_blocks, ..
            } => alpha * num_blocks,
            TraceSpec::Sequence { ref sequence, .. } => sequence.total_len(),
            TraceSpec::Materialized(ref t) => t.requests.len(),
        }
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Report name without instantiating the source (identical to the
    /// string the instantiated source's `name()` returns — pinned by a
    /// unit test, since e.g. the Facebook setup builds O(racks²) alias
    /// tables that a title string should not pay for).
    pub fn name(&self) -> String {
        match *self {
            TraceSpec::Uniform { num_racks, .. } => format!("uniform(n={num_racks})"),
            TraceSpec::Permutation { num_racks, .. } => format!("permutation(n={num_racks})"),
            TraceSpec::Hotspot {
                num_racks, num_hot, ..
            } => format!("hotspot({num_hot}/{num_racks})"),
            TraceSpec::Zipf {
                exponent,
                num_racks,
                ..
            } => format!("zipf(s={exponent}, n={num_racks})"),
            TraceSpec::Facebook {
                cluster, num_racks, ..
            } => format!("facebook-{cluster:?}(n={num_racks})"),
            TraceSpec::Microsoft { num_racks, .. } => format!("microsoft(n={num_racks})"),
            TraceSpec::StarUniform { spokes, alpha, .. } => {
                format!("star-nemesis(spokes={spokes}, alpha={alpha})")
            }
            TraceSpec::StarRoundRobin { spokes, alpha, .. } => {
                format!("star-rr(spokes={spokes}, alpha={alpha})")
            }
            TraceSpec::Matrix { ref matrix, .. } => {
                format!("demand({}, n={})", matrix.name(), matrix.num_racks())
            }
            TraceSpec::Sequence { ref sequence, .. } => format!(
                "demand-seq({}, n={})",
                sequence.name(),
                sequence.num_racks()
            ),
            TraceSpec::Materialized(ref t) => t.name.clone(),
        }
    }

    /// Number of racks without instantiating the source.
    pub fn num_racks(&self) -> usize {
        match *self {
            TraceSpec::Uniform { num_racks, .. }
            | TraceSpec::Permutation { num_racks, .. }
            | TraceSpec::Hotspot { num_racks, .. }
            | TraceSpec::Zipf { num_racks, .. }
            | TraceSpec::Facebook { num_racks, .. }
            | TraceSpec::Microsoft { num_racks, .. } => num_racks,
            TraceSpec::StarUniform { spokes, .. } | TraceSpec::StarRoundRobin { spokes, .. } => {
                spokes + 1
            }
            TraceSpec::Matrix { ref matrix, .. } => matrix.num_racks(),
            TraceSpec::Sequence { ref sequence, .. } => sequence.num_racks(),
            TraceSpec::Materialized(ref t) => t.num_racks,
        }
    }

    /// A copy with the trace seed replaced — the lever for
    /// (trace-seed × algorithm-seed) sweep grids. No-op for the seedless
    /// variants (`StarRoundRobin`, `Materialized`).
    pub fn with_seed(&self, new_seed: u64) -> Self {
        let mut spec = self.clone();
        match spec {
            TraceSpec::Uniform { ref mut seed, .. }
            | TraceSpec::Permutation { ref mut seed, .. }
            | TraceSpec::Hotspot { ref mut seed, .. }
            | TraceSpec::Zipf { ref mut seed, .. }
            | TraceSpec::Facebook { ref mut seed, .. }
            | TraceSpec::Microsoft { ref mut seed, .. }
            | TraceSpec::StarUniform { ref mut seed, .. }
            | TraceSpec::Matrix { ref mut seed, .. }
            | TraceSpec::Sequence { ref mut seed, .. } => *seed = new_seed,
            TraceSpec::StarRoundRobin { .. } | TraceSpec::Materialized(_) => {}
        }
        spec
    }

    /// The eager trace this spec describes: borrowed for
    /// [`Materialized`](TraceSpec::Materialized), generated otherwise.
    /// Offline algorithms (SO-BMA, prediction oracles) go through this; the
    /// online path never should.
    pub fn as_trace(&self) -> Cow<'_, Trace> {
        match self {
            TraceSpec::Materialized(t) => Cow::Borrowed(&**t),
            _ => Cow::Owned(self.source().materialize()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::synthetic::uniform_trace;

    #[test]
    fn seeded_source_streams_reset_and_materialize() {
        let mut s = uniform_source(8, 100, 5);
        assert_eq!(s.len(), 100);
        assert_eq!(s.remaining(), 100);
        let first: Vec<Pair> = std::iter::from_fn(|| s.next_request()).collect();
        assert_eq!(first.len(), 100);
        assert_eq!(s.remaining(), 0);
        assert!(s.next_request().is_none());
        s.reset();
        let second: Vec<Pair> = std::iter::from_fn(|| s.next_request()).collect();
        assert_eq!(first, second, "reset must replay identically");
        let trace = s.materialize();
        assert_eq!(trace.requests, first);
        assert_eq!(s.remaining(), 100, "materialize leaves the source rewound");
    }

    #[test]
    fn source_iter_is_exact_size() {
        let mut s = uniform_source(6, 40, 1);
        s.next_request();
        let it = SourceIter::new(&mut s);
        assert_eq!(it.len(), 39);
        assert_eq!(it.count(), 39);
    }

    #[test]
    fn source_iter_len_counts_down_without_reconsulting_source() {
        let mut s = uniform_source(6, 10, 1);
        let mut it = SourceIter::new(&mut s);
        assert_eq!(it.len(), 10);
        it.next();
        it.next();
        assert_eq!(it.len(), 8, "length is tracked locally");
        assert_eq!(it.size_hint(), (8, Some(8)));
    }

    #[test]
    fn fill_replays_next_request_sequence() {
        let mut s = uniform_source(9, 100, 3);
        let expected: Vec<Pair> = std::iter::from_fn(|| s.next_request()).collect();
        s.reset();
        let mut buf = [Pair::new(0, 1); 7];
        let mut batched = Vec::new();
        loop {
            let n = s.fill(&mut buf);
            batched.extend_from_slice(&buf[..n]);
            if n < buf.len() {
                break;
            }
        }
        assert_eq!(batched, expected, "fill must equal per-request streaming");
        assert_eq!(s.remaining(), 0);
        assert_eq!(s.fill(&mut buf), 0, "exhausted source fills nothing");
    }

    #[test]
    fn fill_is_short_only_at_stream_end() {
        let mut s = uniform_source(5, 10, 2);
        let mut buf = [Pair::new(0, 1); 64];
        assert_eq!(s.fill(&mut buf[..4]), 4);
        assert_eq!(s.remaining(), 6);
        assert_eq!(s.fill(&mut buf), 6, "tail fill is truncated to remaining");
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn materialized_fill_copies_and_tracks_position() {
        let trace = uniform_trace(8, 20, 4);
        let mut src = MaterializedSource::from(trace.clone());
        let mut buf = [Pair::new(0, 1); 12];
        let n = src.fill(&mut buf);
        assert_eq!(n, 12);
        assert_eq!(&buf[..n], &trace.requests[..12]);
        let n = src.fill(&mut buf);
        assert_eq!(n, 8);
        assert_eq!(&buf[..n], &trace.requests[12..]);
        assert!(src.next_request().is_none());
    }

    #[test]
    fn materialized_source_round_trips() {
        let trace = uniform_trace(10, 64, 9);
        let mut src = MaterializedSource::from(trace.clone());
        assert_eq!(src.name(), trace.name);
        assert_eq!(src.materialize().requests, trace.requests);
        let streamed: Vec<Pair> = std::iter::from_fn(|| src.next_request()).collect();
        assert_eq!(streamed, trace.requests);
    }

    #[test]
    fn spec_len_and_racks_agree_with_sources() {
        let specs = [
            TraceSpec::Uniform {
                num_racks: 9,
                len: 33,
                seed: 1,
            },
            TraceSpec::Permutation {
                num_racks: 8,
                len: 20,
                seed: 2,
            },
            TraceSpec::Hotspot {
                num_racks: 12,
                len: 40,
                num_hot: 3,
                p_hot: 0.7,
                seed: 3,
            },
            TraceSpec::Zipf {
                num_racks: 7,
                len: 25,
                exponent: 1.1,
                seed: 4,
            },
            TraceSpec::Facebook {
                cluster: FacebookCluster::Database,
                num_racks: 10,
                len: 50,
                seed: 5,
            },
            TraceSpec::Microsoft {
                num_racks: 6,
                len: 30,
                params: MicrosoftParams::default(),
                seed: 6,
            },
            TraceSpec::StarUniform {
                spokes: 4,
                alpha: 3,
                num_blocks: 5,
                seed: 7,
            },
            TraceSpec::StarRoundRobin {
                spokes: 4,
                alpha: 2,
                num_blocks: 6,
            },
            TraceSpec::matrix(dcn_demand::DemandMatrix::zipf_pairs(8, 1.2, 3), 45, 7),
            TraceSpec::sequence(
                dcn_demand::MatrixSequence::zipf_switching(6, 2, 20, 1.1, 4),
                8,
            ),
            TraceSpec::materialized(uniform_trace(5, 17, 0)),
        ];
        for spec in specs {
            let src = spec.source();
            assert_eq!(spec.len(), src.len(), "{spec:?}");
            assert_eq!(spec.num_racks(), src.num_racks(), "{spec:?}");
            assert_eq!(spec.name(), src.name(), "{spec:?}");
            assert!(!spec.is_empty());
        }
    }

    #[test]
    fn with_seed_changes_stream_only_where_seeded() {
        let spec = TraceSpec::Uniform {
            num_racks: 8,
            len: 50,
            seed: 1,
        };
        let a = spec.as_trace().into_owned();
        let b = spec.with_seed(2).as_trace().into_owned();
        assert_ne!(a.requests, b.requests);
        assert_eq!(
            spec.with_seed(1),
            spec,
            "with_seed is a pure seed substitution"
        );
        let rr = TraceSpec::StarRoundRobin {
            spokes: 3,
            alpha: 2,
            num_blocks: 4,
        };
        assert_eq!(rr.with_seed(99), rr);
    }

    #[test]
    fn as_trace_borrows_materialized() {
        let spec = TraceSpec::materialized(uniform_trace(5, 10, 3));
        assert!(matches!(spec.as_trace(), Cow::Borrowed(_)));
        let gen = TraceSpec::Uniform {
            num_racks: 5,
            len: 10,
            seed: 3,
        };
        assert_eq!(gen.as_trace().requests, spec.as_trace().requests);
    }
}

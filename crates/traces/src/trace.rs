//! The request-sequence model (§1.1): `σ = {s1,t1}, {s2,t2}, …`.

use dcn_topology::Pair;

/// A finite request sequence over a fixed set of racks.
///
/// Each request is an unordered rack pair (a packet or fixed quantum of
/// bytes — the paper's footnote 1 allows either reading; the simulator's
/// costs are per request).
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Number of racks (`|V|`); all request endpoints are `< num_racks`.
    pub num_racks: usize,
    /// The requests, in arrival order.
    pub requests: Vec<Pair>,
    /// Human-readable provenance for reports.
    pub name: String,
}

impl Trace {
    /// Creates a trace, validating all endpoints.
    pub fn new(num_racks: usize, requests: Vec<Pair>, name: impl Into<String>) -> Self {
        for r in &requests {
            assert!(
                (r.hi() as usize) < num_racks,
                "request endpoint {} out of range (racks: {num_racks})",
                r.hi()
            );
        }
        Self {
            num_racks,
            requests,
            name: name.into(),
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// A prefix view of the first `n` requests (clamped to the length).
    pub fn prefix(&self, n: usize) -> &[Pair] {
        &self.requests[..n.min(self.requests.len())]
    }

    /// Adapts this trace into a streaming [`crate::source::RequestSource`]
    /// (shared via `Arc`, so further clones are cheap).
    pub fn into_source(self) -> crate::source::MaterializedSource {
        crate::source::MaterializedSource::from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_prefix() {
        let t = Trace::new(4, vec![Pair::new(0, 1), Pair::new(2, 3)], "t");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.prefix(1), &[Pair::new(0, 1)]);
        assert_eq!(t.prefix(99).len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        Trace::new(3, vec![Pair::new(0, 3)], "bad");
    }
}

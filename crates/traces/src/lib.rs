//! # dcn-traces
//!
//! The **workload substrate**: request traces with the spatial and temporal
//! structure of real datacenter traffic.
//!
//! The paper's evaluation (§3.1) uses Facebook cluster traces (Roy et
//! al. \[63\]) and a Microsoft rack-to-rack probability matrix (ProjecToR
//! \[32\]). Neither dataset ships with this repository, so this crate
//! *synthesizes* workloads with the two structural properties that — per
//! Avin et al. \[5\], which the paper cites for exactly this point — determine
//! how reconfigurable-network algorithms behave:
//!
//! * **spatial skew** (“complexity of the traffic matrix”): a small set of
//!   rack pairs carries most traffic; and
//! * **temporal structure** (“burstiness”): requests to a pair arrive in
//!   correlated bursts rather than i.i.d.
//!
//! Every workload is produced as a **streaming [`source::RequestSource`]**:
//! a seeded, resettable, lazily-generated request stream with O(1) memory
//! in the stream length, so production-scale sweeps (millions of requests)
//! never materialize a trace. [`source::TraceSpec`] describes a workload by
//! value (generator + parameters + trace seed) for sweep jobs; [`Trace`] is
//! the eager adapter ([`source::RequestSource::materialize`]) for offline
//! baselines, statistics, and CSV round-trips.
//!
//! [`generators::facebook`] produces bursty, skewed streams with per-cluster
//! presets (Database / WebService / Hadoop); [`generators::microsoft`]
//! samples i.i.d. from a skewed random traffic matrix — i.i.d. sampling from
//! a matrix is exactly how the paper generates its Microsoft workload, so
//! that experiment transfers unchanged. [`generators::demand`] generalizes
//! the latter to *any* [`dcn_demand::DemandMatrix`] (i.i.d. sampling) and to
//! [`dcn_demand::MatrixSequence`] phase schedules (switches and drift — the
//! temporal-evolution axis frozen matrices cannot express).
//! [`generators::synthetic`] provides uniform / permutation / hotspot /
//! Zipf reference workloads, [`generators::adversarial`] the star-graph
//! block sequences of the lower bound (§2.4). [`stats`] quantifies skew (Gini, top-k coverage) and
//! temporal locality (reuse distances), so tests can *verify* the synthetic
//! workloads have the paper-claimed structure. [`csvio`] round-trips traces
//! so users can feed their own real traces to the simulator.

pub mod csvio;
pub mod generators;
pub mod sampler;
pub mod source;
pub mod stats;
pub mod trace;

pub use sampler::{zipf_weights, AliasTable};
pub use source::{MaterializedSource, RequestSource, SourceIter, TraceSpec};
pub use stats::TraceStats;
pub use trace::Trace;

pub use generators::adversarial::{
    star_round_robin_blocks, star_round_robin_source, star_uniform_blocks, star_uniform_source,
};
pub use generators::demand::{
    matrix_source, matrix_trace, sequence_source, sequence_trace, MatrixKernel, SequenceKernel,
};
pub use generators::facebook::{
    facebook_cluster_source, facebook_cluster_trace, facebook_source, facebook_trace,
    FacebookCluster, FacebookParams,
};
pub use generators::genome::{Genome, GenomeSource, Segment};
pub use generators::microsoft::{microsoft_source, microsoft_trace, MicrosoftParams};
pub use generators::synthetic::{
    hotspot_source, hotspot_trace, permutation_source, permutation_trace, uniform_source,
    uniform_trace, zipf_pair_source, zipf_pair_trace,
};

// The demand-matrix types TraceSpec carries, re-exported so trace users
// don't need a direct dcn-demand dependency for the common path.
pub use dcn_demand::{DemandMatrix, MatrixSequence};

//! Workload structure statistics: spatial skew and temporal locality.
//!
//! Used both by tests (to *prove* the synthetic traces have the structure
//! the paper attributes to the real ones) and by the `trace_analysis`
//! example.

use crate::trace::Trace;
use dcn_topology::Pair;
use dcn_util::{gini, FxHashMap};

/// Summary statistics of a trace.
#[derive(Clone, Debug)]
pub struct TraceStats {
    /// Total number of requests.
    pub total_requests: usize,
    /// Number of distinct rack pairs appearing at least once.
    pub distinct_pairs: usize,
    /// Gini coefficient of per-pair request counts (0 uniform → 1 skewed).
    pub pair_gini: f64,
    /// Median time gap between consecutive requests to the same pair
    /// (smaller = burstier). `f64::INFINITY` if no pair repeats.
    pub median_reuse_distance: f64,
    /// Fraction of requests carried by the heaviest 1% of pairs.
    pub top1pct_share: f64,
}

impl TraceStats {
    /// Computes all statistics in one pass (plus sorting for quantiles).
    pub fn compute(trace: &Trace) -> Self {
        let mut counts: FxHashMap<Pair, u64> = FxHashMap::default();
        let mut last_seen: FxHashMap<Pair, usize> = FxHashMap::default();
        let mut gaps: Vec<u64> = Vec::new();
        for (t, &r) in trace.requests.iter().enumerate() {
            *counts.entry(r).or_insert(0) += 1;
            if let Some(prev) = last_seen.insert(r, t) {
                gaps.push((t - prev) as u64);
            }
        }
        let weights: Vec<f64> = counts.values().map(|&c| c as f64).collect();
        let median_reuse = if gaps.is_empty() {
            f64::INFINITY
        } else {
            gaps.sort_unstable();
            gaps[gaps.len() / 2] as f64
        };
        let mut sorted: Vec<u64> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top_n = (sorted.len().max(100) / 100).min(sorted.len());
        let top_share = if trace.is_empty() || sorted.is_empty() {
            0.0
        } else {
            sorted[..top_n].iter().sum::<u64>() as f64 / trace.len() as f64
        };
        Self {
            total_requests: trace.len(),
            distinct_pairs: counts.len(),
            pair_gini: gini(&weights),
            median_reuse_distance: median_reuse,
            top1pct_share: top_share,
        }
    }

    /// Average fraction of a rack's traffic carried by its `k` heaviest
    /// partners — the quantity that upper-bounds what a b-matching with
    /// `b = k` can convert to 1-hop routes.
    pub fn topk_partner_coverage(&self, trace: &Trace, k: usize) -> f64 {
        let mut per_node: FxHashMap<u32, FxHashMap<u32, u64>> = FxHashMap::default();
        for r in &trace.requests {
            *per_node
                .entry(r.lo())
                .or_default()
                .entry(r.hi())
                .or_insert(0) += 1;
            *per_node
                .entry(r.hi())
                .or_default()
                .entry(r.lo())
                .or_insert(0) += 1;
        }
        if per_node.is_empty() {
            return 0.0;
        }
        let mut covered = 0u64;
        let mut total = 0u64;
        for partners in per_node.values() {
            let mut counts: Vec<u64> = partners.values().copied().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            total += counts.iter().sum::<u64>();
            covered += counts.iter().take(k).sum::<u64>();
        }
        covered as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(n: usize, reqs: &[(u32, u32)]) -> Trace {
        Trace::new(n, reqs.iter().map(|&(a, b)| Pair::new(a, b)).collect(), "t")
    }

    #[test]
    fn counts_and_distinct() {
        let t = trace_of(4, &[(0, 1), (0, 1), (2, 3)]);
        let s = TraceStats::compute(&t);
        assert_eq!(s.total_requests, 3);
        assert_eq!(s.distinct_pairs, 2);
    }

    #[test]
    fn reuse_distance_of_tight_bursts() {
        let t = trace_of(4, &[(0, 1), (0, 1), (0, 1), (2, 3), (2, 3)]);
        let s = TraceStats::compute(&t);
        assert_eq!(s.median_reuse_distance, 1.0);
    }

    #[test]
    fn no_repeats_gives_infinite_reuse() {
        let t = trace_of(6, &[(0, 1), (2, 3), (4, 5)]);
        assert_eq!(TraceStats::compute(&t).median_reuse_distance, f64::INFINITY);
    }

    #[test]
    fn coverage_full_when_k_large() {
        let t = trace_of(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let s = TraceStats::compute(&t);
        assert!((s.topk_partner_coverage(&t, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_partial_when_k_one() {
        // Rack 0 talks to 1 (twice) and 2 (once): top-1 covers 2/3 of rack
        // 0's traffic.
        let t = trace_of(3, &[(0, 1), (0, 1), (0, 2)]);
        let s = TraceStats::compute(&t);
        let cov = s.topk_partner_coverage(&t, 1);
        // rack0: 2/3, rack1: 2/2, rack2: 1/1 => (2+2+1)/(3+2+1) = 5/6.
        assert!((cov - 5.0 / 6.0).abs() < 1e-9, "coverage {cov}");
    }

    #[test]
    fn gini_zero_for_balanced() {
        let t = trace_of(4, &[(0, 1), (2, 3), (0, 1), (2, 3)]);
        assert!(TraceStats::compute(&t).pair_gini.abs() < 1e-12);
    }
}

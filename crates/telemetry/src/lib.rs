//! # dcn-telemetry
//!
//! Dependency-free metrics for the simulator, the executors and the figure
//! harness: [`Counter`] / [`Gauge`] / log2-bucketed integer [`Histogram`]
//! recorders, merged at flush time into a shared [`Telemetry`] handle.
//!
//! ## Hot-path discipline
//!
//! The serve loop runs at tens of millions of requests per second, so the
//! layer is built around **component-local recorders**: a scheduler or a
//! worker thread owns plain [`Counter`]s and [`Histogram`]s (single u64
//! adds — no atomics, no locks, no floats, no allocation) and merges them
//! into the [`Telemetry`] registry exactly once, at flush (end of run or
//! worker exit). The registry itself is a mutex around a [`Snapshot`]; it
//! is only ever touched on the flush path.
//!
//! Telemetry must never perturb results: recorders draw no randomness,
//! change no cost accounting, and nothing recorded here enters a
//! `RunReport` — reports are byte-identical with telemetry enabled,
//! disabled, or compiled off (pinned by a proptest in `dcn-core`).
//!
//! ## Disabled and compiled-off
//!
//! A disabled handle ([`Telemetry::disabled`], the default) makes every
//! merge a no-op behind one branch. Building with
//! `RUSTFLAGS="--cfg dcn_telemetry_off"` removes the layer entirely:
//! every recorder becomes a zero-sized type and every method an empty
//! inline body, so instrumented call sites compile to exactly the
//! uninstrumented code. [`compiled`] reports which flavor is active
//! (benches use it to label their overhead points).
//!
//! ## Export
//!
//! [`Snapshot`] is the portable aggregation unit: it merges associatively
//! ([`Snapshot::absorb`] — counters and histogram buckets sum, gauges
//! max), serializes to the compact single-line `TELEM_*.json` schema
//! ([`Snapshot::to_json`]) and to Prometheus text exposition format
//! ([`Snapshot::to_prometheus`]). Histogram percentiles are recomputed
//! from the merged buckets, so merge-then-export equals export-then-merge.

use std::collections::BTreeMap;
use std::fmt;
#[cfg(not(dcn_telemetry_off))]
use std::sync::{Arc, Mutex};

/// Whether the telemetry layer is compiled in (`false` under
/// `--cfg dcn_telemetry_off`, where every recorder is a ZST).
pub const fn compiled() -> bool {
    cfg!(not(dcn_telemetry_off))
}

// ---------------------------------------------------------------------------
// Local recorders (hot-path side: plain integer cells, no sharing)
// ---------------------------------------------------------------------------

/// A component-local event counter: one u64, bumped on the hot path,
/// drained into the registry at flush.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter(#[cfg(not(dcn_telemetry_off))] u64);

impl Counter {
    /// Adds one.
    #[inline(always)]
    pub fn bump(&mut self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline(always)]
    pub fn add(&mut self, _n: u64) {
        #[cfg(not(dcn_telemetry_off))]
        {
            self.0 += _n;
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(not(dcn_telemetry_off))]
        return self.0;
        #[cfg(dcn_telemetry_off)]
        0
    }

    /// Returns the value and resets to zero (flush-and-drain).
    #[inline]
    pub fn take(&mut self) -> u64 {
        #[cfg(not(dcn_telemetry_off))]
        return std::mem::take(&mut self.0);
        #[cfg(dcn_telemetry_off)]
        0
    }
}

/// A component-local last/extreme-value cell.
#[derive(Clone, Copy, Debug, Default)]
pub struct Gauge(#[cfg(not(dcn_telemetry_off))] i64);

impl Gauge {
    /// Overwrites the value.
    #[inline(always)]
    pub fn set(&mut self, _v: i64) {
        #[cfg(not(dcn_telemetry_off))]
        {
            self.0 = _v;
        }
    }

    /// Folds in a maximum.
    #[inline(always)]
    pub fn fold_max(&mut self, _v: i64) {
        #[cfg(not(dcn_telemetry_off))]
        {
            self.0 = self.0.max(_v);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        #[cfg(not(dcn_telemetry_off))]
        return self.0;
        #[cfg(dcn_telemetry_off)]
        0
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `k ≥ 1`
/// holds values with bit length `k`, i.e. `[2^(k-1), 2^k - 1]`, up to
/// bucket 64 (`[2^63, u64::MAX]`).
pub const HIST_BUCKETS: usize = 65;

/// Bucket index of a value: 0 for 0, otherwise the bit length (1..=64).
#[inline(always)]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Largest value a bucket holds: 0, 1, 3, 7, …, `u64::MAX`. This is the
/// representative percentiles report, so a percentile overestimates its
/// exact order statistic by at most 2x (the log2 resolution).
#[inline]
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        64.. => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

/// A component-local log2-bucketed integer histogram. `record` is a
/// `leading_zeros` plus three u64 adds — no floats, no locks, no
/// allocation — so it is safe to call once per serve chunk or per job.
#[derive(Clone, Debug)]
pub struct Histogram {
    #[cfg(not(dcn_telemetry_off))]
    count: u64,
    #[cfg(not(dcn_telemetry_off))]
    sum: u64,
    #[cfg(not(dcn_telemetry_off))]
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            #[cfg(not(dcn_telemetry_off))]
            count: 0,
            #[cfg(not(dcn_telemetry_off))]
            sum: 0,
            #[cfg(not(dcn_telemetry_off))]
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline(always)]
    pub fn record(&mut self, _value: u64) {
        #[cfg(not(dcn_telemetry_off))]
        {
            self.buckets[bucket_index(_value)] += 1;
            self.count += 1;
            self.sum = self.sum.saturating_add(_value);
        }
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        #[cfg(not(dcn_telemetry_off))]
        return self.count;
        #[cfg(dcn_telemetry_off)]
        0
    }

    /// Whether nothing has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The portable (sparse) form for merging and export.
    pub fn snapshot(&self) -> HistogramSnapshot {
        #[cfg(not(dcn_telemetry_off))]
        {
            HistogramSnapshot {
                count: self.count,
                sum: self.sum,
                buckets: self
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(k, &c)| (k as u8, c))
                    .collect(),
            }
        }
        #[cfg(dcn_telemetry_off)]
        HistogramSnapshot::default()
    }
}

// ---------------------------------------------------------------------------
// Snapshots (flush/export side: always compiled — the merge tooling must
// be able to read artifacts produced by instrumented builds)
// ---------------------------------------------------------------------------

/// Sparse portable histogram: sorted `(bucket, count)` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// The `p`-th percentile (p in 1..=100): the upper bound of the first
    /// bucket whose cumulative count reaches rank `⌈count·p/100⌉`.
    /// Returns 0 on an empty histogram.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * p).div_ceil(100).max(1);
        let mut cum = 0u64;
        for &(k, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return bucket_upper_bound(k as usize);
            }
        }
        bucket_upper_bound(64)
    }

    /// Folds `other` in: counts and per-bucket tallies sum.
    pub fn absorb(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        let mut merged: BTreeMap<u8, u64> = self.buckets.iter().copied().collect();
        for &(k, c) in &other.buckets {
            *merged.entry(k).or_insert(0) += c;
        }
        self.buckets = merged.into_iter().collect();
    }
}

/// A merged view of everything flushed into one [`Telemetry`] registry:
/// the unit `TELEM_*.json` serializes, shard merging folds, and the
/// summary table renders.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotone event counts (shard merge: sum).
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time values (shard merge: max).
    pub gauges: BTreeMap<String, i64>,
    /// Log2 histograms (shard merge: bucket-wise sum).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` in. Associative and commutative (counters and
    /// histogram buckets sum, gauges max), so shard artifacts merge in any
    /// grouping to the same result — pinned by unit tests here and the
    /// shard round-trip in CI.
    pub fn absorb(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(i64::MIN);
            *e = (*e).max(*v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().absorb(h);
        }
    }

    /// Serializes to the compact single-line `TELEM_*.json` schema:
    ///
    /// ```json
    /// {"target":"demand","counters":{...},"gauges":{...},
    ///  "histograms":{"name":{"count":N,"sum":S,"p50":..,"p90":..,"p99":..,
    ///                        "buckets":[[k,c],...]}}}
    /// ```
    ///
    /// Every value is an integer (percentiles are bucket upper bounds), so
    /// the artifact is exactly reproducible from the buckets and merging
    /// commutes with serialization.
    pub fn to_json(&self, target: &str) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"target\":");
        push_json_string(&mut s, target);
        s.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_string(&mut s, k);
            s.push(':');
            s.push_str(&v.to_string());
        }
        s.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_string(&mut s, k);
            s.push(':');
            s.push_str(&v.to_string());
        }
        s.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_string(&mut s, k);
            s.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                h.count,
                h.sum,
                h.percentile(50),
                h.percentile(90),
                h.percentile(99)
            ));
            for (j, (b, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("[{b},{c}]"));
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }

    /// Serializes to Prometheus text exposition format (`# TYPE` lines,
    /// `rdcn_`-prefixed sanitized names, cumulative `_bucket{le=...}`
    /// series per histogram).
    pub fn to_prometheus(&self) -> String {
        let mut s = String::with_capacity(256);
        for (k, v) in &self.counters {
            let name = prom_name(k);
            s.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let name = prom_name(k);
            s.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let name = prom_name(k);
            s.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cum = 0u64;
            for &(b, c) in &h.buckets {
                cum += c;
                s.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cum}\n",
                    bucket_upper_bound(b as usize)
                ));
            }
            s.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            s.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        s
    }
}

/// Appends a JSON string literal (metric names are ASCII, but escape
/// defensively anyway).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Sanitizes a dotted metric name for Prometheus: `serve.chunk_ns` →
/// `rdcn_serve_chunk_ns`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("rdcn_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else {
            out.push('_');
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The handle
// ---------------------------------------------------------------------------

#[cfg(not(dcn_telemetry_off))]
struct Registry {
    store: Mutex<Snapshot>,
}

/// Shared sink local recorders flush into. Cloning shares the registry
/// (it is an `Arc`); the default handle is disabled and every method on
/// it is a no-op behind one branch. Under `--cfg dcn_telemetry_off` the
/// handle is a ZST and the branch itself is compiled out.
///
/// All methods lock the registry — they are **flush-path** operations.
/// Hot loops accumulate into local [`Counter`]s / [`Histogram`]s and call
/// these once per run / worker / chunk boundary.
#[derive(Clone, Default)]
pub struct Telemetry {
    #[cfg(not(dcn_telemetry_off))]
    inner: Option<Arc<Registry>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_enabled() {
            f.write_str("Telemetry(enabled)")
        } else {
            f.write_str("Telemetry(disabled)")
        }
    }
}

impl Telemetry {
    /// A live handle with a fresh registry (a ZST no-op when the layer is
    /// compiled off).
    pub fn enabled() -> Self {
        Self {
            #[cfg(not(dcn_telemetry_off))]
            inner: Some(Arc::new(Registry {
                store: Mutex::new(Snapshot::default()),
            })),
        }
    }

    /// The no-op handle (also the `Default`).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether flushes into this handle are recorded.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        #[cfg(not(dcn_telemetry_off))]
        return self.inner.is_some();
        #[cfg(dcn_telemetry_off)]
        false
    }

    #[cfg(not(dcn_telemetry_off))]
    fn with_store(&self, f: impl FnOnce(&mut Snapshot)) {
        if let Some(inner) = &self.inner {
            f(&mut inner.store.lock().expect("telemetry registry poisoned"));
        }
    }

    /// Adds to a named counter (no-op when disabled or `v == 0`, so
    /// drained recorders that saw nothing leave no key behind).
    pub fn add_counter(&self, _name: &str, _v: u64) {
        #[cfg(not(dcn_telemetry_off))]
        if _v > 0 {
            self.with_store(|s| *s.counters.entry(_name.to_string()).or_insert(0) += _v);
        }
    }

    /// Folds a named gauge toward its maximum.
    pub fn gauge_max(&self, _name: &str, _v: i64) {
        #[cfg(not(dcn_telemetry_off))]
        self.with_store(|s| {
            let e = s.gauges.entry(_name.to_string()).or_insert(i64::MIN);
            *e = (*e).max(_v);
        });
    }

    /// Records a single observation into a named histogram (flush-path
    /// convenience; hot loops use a local [`Histogram`] and
    /// [`Telemetry::merge_histogram`]).
    pub fn observe(&self, _name: &str, _v: u64) {
        #[cfg(not(dcn_telemetry_off))]
        self.with_store(|s| {
            let h = s.histograms.entry(_name.to_string()).or_default();
            let mut local = Histogram::default();
            local.record(_v);
            h.absorb(&local.snapshot());
        });
    }

    /// Merges a local histogram recorder into a named histogram.
    pub fn merge_histogram(&self, _name: &str, _h: &Histogram) {
        #[cfg(not(dcn_telemetry_off))]
        if !_h.is_empty() {
            self.with_store(|s| {
                s.histograms
                    .entry(_name.to_string())
                    .or_default()
                    .absorb(&_h.snapshot())
            });
        }
    }

    /// Merges a whole snapshot (used by shard merging and tests).
    pub fn merge(&self, _snapshot: &Snapshot) {
        #[cfg(not(dcn_telemetry_off))]
        self.with_store(|s| s.absorb(_snapshot));
    }

    /// A copy of everything flushed so far (empty when disabled).
    pub fn snapshot(&self) -> Snapshot {
        #[cfg(not(dcn_telemetry_off))]
        if let Some(inner) = &self.inner {
            return inner
                .store
                .lock()
                .expect("telemetry registry poisoned")
                .clone();
        }
        Snapshot::default()
    }

    /// Takes everything flushed so far, leaving the registry empty —
    /// the per-target export boundary of `repro_figures --telemetry`.
    pub fn drain(&self) -> Snapshot {
        #[cfg(not(dcn_telemetry_off))]
        if let Some(inner) = &self.inner {
            return std::mem::take(&mut *inner.store.lock().expect("telemetry registry poisoned"));
        }
        Snapshot::default()
    }
}

// ---------------------------------------------------------------------------
// Process-global handle
// ---------------------------------------------------------------------------

#[cfg(not(dcn_telemetry_off))]
static GLOBAL: Mutex<Option<Telemetry>> = Mutex::new(None);

/// Installs the process-global handle (`repro_figures --telemetry` does
/// this once at startup). Components that take no explicit handle —
/// `SimConfig::default()`, the sweep executor — pick it up via
/// [`global`]. Installing a disabled handle uninstalls.
pub fn install_global(_telemetry: Telemetry) {
    #[cfg(not(dcn_telemetry_off))]
    {
        *GLOBAL.lock().expect("global telemetry poisoned") =
            _telemetry.is_enabled().then_some(_telemetry);
    }
}

/// The process-global handle; disabled unless [`install_global`] was
/// called. Cheap (one mutex lock + `Arc` clone) but not hot-path cheap —
/// call once per run/fan-out, not per request.
pub fn global() -> Telemetry {
    #[cfg(not(dcn_telemetry_off))]
    if let Some(t) = GLOBAL.lock().expect("global telemetry poisoned").as_ref() {
        return t.clone();
    }
    Telemetry::disabled()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Value-asserting tests only make sense with the layer compiled in;
    // under --cfg dcn_telemetry_off everything is a no-op by design.
    #[cfg(not(dcn_telemetry_off))]
    mod compiled_in {
        use super::super::*;

        #[test]
        fn bucket_boundaries_are_exact_powers_of_two() {
            // Bucket 0 is the value 0; bucket k >= 1 is bit length k,
            // i.e. the half-open doubling interval [2^(k-1), 2^k).
            assert_eq!(bucket_index(0), 0);
            assert_eq!(bucket_index(1), 1);
            assert_eq!(bucket_index(2), 2);
            assert_eq!(bucket_index(3), 2);
            assert_eq!(bucket_index(4), 3);
            for k in 1..64usize {
                let lo = 1u64 << (k - 1);
                let hi = (1u64 << k) - 1;
                assert_eq!(bucket_index(lo), k, "lower edge of bucket {k}");
                assert_eq!(bucket_index(hi), k, "upper edge of bucket {k}");
                assert_eq!(bucket_index(hi + 1), k + 1, "first value past bucket {k}");
            }
            assert_eq!(bucket_index(u64::MAX), 64);
            assert_eq!(bucket_upper_bound(0), 0);
            assert_eq!(bucket_upper_bound(1), 1);
            assert_eq!(bucket_upper_bound(2), 3);
            assert_eq!(bucket_upper_bound(10), 1023);
            assert_eq!(bucket_upper_bound(64), u64::MAX);
        }

        #[test]
        fn histogram_records_and_snapshots() {
            let mut h = Histogram::default();
            for v in [0u64, 1, 2, 3, 1000, 1023, 1024] {
                h.record(v);
            }
            assert_eq!(h.count(), 7);
            let s = h.snapshot();
            assert_eq!(s.count, 7);
            assert_eq!(s.sum, 3053);
            // 0→b0, 1→b1, {2,3}→b2, {1000,1023}→b10, 1024→b11.
            assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (10, 2), (11, 1)]);
        }

        #[test]
        fn percentiles_walk_cumulative_buckets() {
            let mut h = Histogram::default();
            for _ in 0..90 {
                h.record(100); // bucket 7, upper bound 127
            }
            for _ in 0..10 {
                h.record(100_000); // bucket 17, upper bound 131071
            }
            let s = h.snapshot();
            assert_eq!(s.percentile(50), 127);
            assert_eq!(s.percentile(90), 127);
            assert_eq!(s.percentile(91), 131_071);
            assert_eq!(s.percentile(99), 131_071);
            assert_eq!(s.percentile(100), 131_071);
            assert_eq!(HistogramSnapshot::default().percentile(50), 0);
        }

        #[test]
        fn snapshot_merge_is_associative_and_commutative() {
            let make = |seed: u64| {
                let t = Telemetry::enabled();
                t.add_counter("c.events", seed + 1);
                t.add_counter(&format!("c.only{seed}"), 7);
                t.gauge_max("g.peak", seed as i64 * 10);
                let mut h = Histogram::default();
                for i in 0..seed + 3 {
                    h.record(i * seed + 1);
                }
                t.merge_histogram("h.lat", &h);
                t.snapshot()
            };
            let (a, b, c) = (make(1), make(2), make(5));
            // (a ⊕ b) ⊕ c
            let mut left = a.clone();
            left.absorb(&b);
            left.absorb(&c);
            // a ⊕ (b ⊕ c)
            let mut bc = b.clone();
            bc.absorb(&c);
            let mut right = a.clone();
            right.absorb(&bc);
            assert_eq!(left, right);
            // commutes, and serialization commutes with merging
            let mut rev = c.clone();
            rev.absorb(&b);
            rev.absorb(&a);
            assert_eq!(left, rev);
            assert_eq!(left.to_json("t"), rev.to_json("t"));
        }

        #[test]
        fn json_schema_is_stable() {
            let t = Telemetry::enabled();
            t.add_counter("serve.requests", 5);
            t.gauge_max("intra.imbalance_pct", 12);
            t.observe("serve.chunk_ns", 900);
            let j = t.snapshot().to_json("demand");
            assert_eq!(
                j,
                "{\"target\":\"demand\",\"counters\":{\"serve.requests\":5},\
                 \"gauges\":{\"intra.imbalance_pct\":12},\
                 \"histograms\":{\"serve.chunk_ns\":{\"count\":1,\"sum\":900,\
                 \"p50\":1023,\"p90\":1023,\"p99\":1023,\"buckets\":[[10,1]]}}}"
            );
        }

        #[test]
        fn prometheus_dump_has_cumulative_buckets() {
            let t = Telemetry::enabled();
            t.add_counter("serve.requests", 5);
            let mut h = Histogram::default();
            h.record(1);
            h.record(2);
            h.record(900);
            t.merge_histogram("serve.chunk_ns", &h);
            let p = t.snapshot().to_prometheus();
            assert!(p.contains("# TYPE rdcn_serve_requests counter\nrdcn_serve_requests 5\n"));
            assert!(p.contains("rdcn_serve_chunk_ns_bucket{le=\"1\"} 1\n"));
            assert!(p.contains("rdcn_serve_chunk_ns_bucket{le=\"3\"} 2\n"));
            assert!(p.contains("rdcn_serve_chunk_ns_bucket{le=\"1023\"} 3\n"));
            assert!(p.contains("rdcn_serve_chunk_ns_bucket{le=\"+Inf\"} 3\n"));
            assert!(p.contains("rdcn_serve_chunk_ns_count 3\n"));
        }

        #[test]
        fn drain_empties_the_registry_and_zero_adds_leave_no_key() {
            let t = Telemetry::enabled();
            t.add_counter("a", 0);
            assert!(t.snapshot().is_empty(), "zero add must leave no key");
            t.add_counter("a", 2);
            let clone = t.clone();
            clone.add_counter("a", 3); // clones share the registry
            assert_eq!(t.drain().counters["a"], 5);
            assert!(t.snapshot().is_empty());
        }

        #[test]
        fn counter_and_gauge_recorders() {
            let mut c = Counter::default();
            c.bump();
            c.add(4);
            assert_eq!(c.get(), 5);
            assert_eq!(c.take(), 5);
            assert_eq!(c.get(), 0);
            let mut g = Gauge::default();
            g.fold_max(3);
            g.fold_max(-1);
            assert_eq!(g.get(), 3);
            g.set(-7);
            assert_eq!(g.get(), -7);
        }

        #[test]
        fn global_install_and_uninstall() {
            // Serialized within this test: install, observe, uninstall.
            let t = Telemetry::enabled();
            install_global(t.clone());
            global().add_counter("g.c", 1);
            assert_eq!(t.snapshot().counters["g.c"], 1);
            install_global(Telemetry::disabled());
            assert!(!global().is_enabled());
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.add_counter("x", 10);
        t.gauge_max("y", 3);
        t.observe("z", 9);
        assert!(t.snapshot().is_empty());
        assert!(t.drain().is_empty());
    }

    #[test]
    fn compiled_flag_matches_cfg() {
        assert_eq!(compiled(), cfg!(not(dcn_telemetry_off)));
    }
}

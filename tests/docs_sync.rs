//! Keeps README.md honest: its quickstart code block claims to mirror the
//! `src/lib.rs` doctest, so this test diffs the two. Editing one without the
//! other fails `cargo test` instead of leaving the README silently stale.

/// Extracts the first fenced code block from `text` whose fence opens with
/// one of `openers`, as trimmed-right lines.
fn fenced_block(text: &str, openers: &[&str]) -> Vec<String> {
    let mut lines = Vec::new();
    let mut inside = false;
    for line in text.lines() {
        let t = line.trim();
        if !inside && openers.contains(&t) {
            inside = true;
            continue;
        }
        if inside {
            if t == "```" {
                return lines;
            }
            lines.push(line.trim_end().to_string());
        }
    }
    panic!("no fenced code block {openers:?} found");
}

#[test]
fn readme_quickstart_matches_lib_doctest() {
    let root = env!("CARGO_MANIFEST_DIR");
    let readme = std::fs::read_to_string(format!("{root}/README.md")).expect("read README.md");
    let lib = std::fs::read_to_string(format!("{root}/src/lib.rs")).expect("read src/lib.rs");

    let readme_code = fenced_block(&readme, &["```rust"]);

    // The doctest lives in `//!` doc comments; strip the prefix and collect
    // the first ``` fence.
    let doc_text: String = lib
        .lines()
        .filter_map(|l| {
            let l = l.trim_start();
            l.strip_prefix("//! ")
                .or_else(|| l.strip_prefix("//!"))
                .map(|s| format!("{s}\n"))
        })
        .collect();
    let doctest_code = fenced_block(&doc_text, &["```", "```rust"]);

    assert_eq!(
        readme_code, doctest_code,
        "README.md quickstart and the src/lib.rs doctest have drifted apart; \
         update both together"
    );
}

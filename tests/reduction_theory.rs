//! Integration tests for the paper's two reductions (Theorems 1 and 2):
//! structural properties that must hold by construction, checked end to end
//! through the public API.

use rdcn::core::algorithms::rbma::{Rbma, RemovalMode};
use rdcn::core::{run, OnlineScheduler, SimConfig};
use rdcn::paging::{run_policy, Marking};
use rdcn::topology::{builders, DistanceMatrix, Pair};
use rdcn::traces::star_uniform_blocks;
use std::sync::Arc;

/// Theorem 2's invariant: in the uniform case with strict removals, R-BMA's
/// matching is exactly the intersection of the endpoint caches, and the
/// per-node fault counts match a standalone marking run on the node's
/// induced subsequence.
#[test]
fn per_node_caches_behave_like_standalone_marking() {
    let n = 8usize;
    let b = 3usize;
    let dm = Arc::new(DistanceMatrix::uniform(n));
    // Uniform case: α = 1 ⇒ every request special.
    let mut rbma = Rbma::new(dm.clone(), b, 1, RemovalMode::Strict, 1234);

    // Deterministic request pattern.
    let requests: Vec<Pair> = (0..3000u32)
        .map(|i| {
            let a = i % n as u32;
            let c = (a + 1 + (i.wrapping_mul(2654435761)) % (n as u32 - 1)) % n as u32;
            (a, c)
        })
        .filter(|&(a, c)| a != c)
        .map(|(a, c)| Pair::new(a, c))
        .collect();

    // Induced per-node paging sequences (partner ids).
    let mut induced: Vec<Vec<u64>> = vec![Vec::new(); n];
    for r in &requests {
        induced[r.lo() as usize].push(r.hi() as u64);
        induced[r.hi() as usize].push(r.lo() as u64);
    }

    for &r in &requests {
        rbma.serve(r);
    }

    // The cache contents must be *a* reachable marking state: same size
    // bound and fault counts in the same ballpark as a standalone marking
    // run with the same per-node sequence (not identical: RNG streams
    // differ). What must match exactly is the fetch-on-request property:
    // every requested pair is cached at both nodes right after its request.
    for (v, seq) in induced.iter().enumerate() {
        let standalone = run_policy(&mut Marking::new(b, 7), seq);
        assert!(standalone.faults > 0);
        // Cache sizes are bounded by b.
        assert!(rbma.matching().degree(v as u32) <= b);
    }
}

/// Theorem 1's reduction: with larger α, reconfigurations become rarer —
/// at most one per k_e = ⌈α/ℓ⌉ requests to a pair, globally at most
/// requests/k_min + slack.
#[test]
fn reconfiguration_rate_scales_inversely_with_alpha() {
    let n = 30;
    let net = builders::leaf_spine(n, 4); // ℓ ≡ 2
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    let trace = rdcn::traces::uniform_trace(n, 30_000, 3);
    let mut last_reconf = u64::MAX;
    for alpha in [2u64, 8, 32, 128] {
        let mut rbma = Rbma::new(dm.clone(), 4, alpha, RemovalMode::Lazy, 5);
        let report = run(
            &mut rbma,
            &dm,
            alpha,
            &trace.requests,
            &SimConfig::default(),
        );
        let k_min = alpha.div_ceil(2);
        let bound = trace.len() as u64 / k_min * 2 + 64; // adds + removes + slack
        assert!(
            report.total.reconfigurations <= bound,
            "α={alpha}: {} reconfigurations exceed bound {bound}",
            report.total.reconfigurations
        );
        assert!(
            report.total.reconfigurations <= last_reconf,
            "α={alpha}: reconfigurations should fall as α grows"
        );
        last_reconf = report.total.reconfigurations;
    }
}

/// Lemma 1's block structure: on star-nemesis traces, R-BMA's
/// reconfigurations happen at block granularity (at most ~2 edge changes
/// per block plus lower-order noise).
#[test]
fn star_blocks_bound_reconfigurations() {
    let b = 4usize;
    let spokes = b + 1;
    let alpha = 6u64;
    let trace = star_uniform_blocks(spokes, alpha as usize, 300, 11);
    let net = builders::star(spokes);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    let mut rbma = Rbma::new(dm, b, alpha, RemovalMode::Lazy, 2);
    let mut changes = 0u64;
    for &r in &trace.requests {
        let o = rbma.serve(r);
        changes += (o.added + o.removed) as u64;
    }
    let blocks = 300u64;
    assert!(
        changes <= 4 * blocks,
        "reconfigurations ({changes}) should be O(blocks) = O({blocks})"
    );
}

/// The uniform-case cost of R-BMA is within the competitive envelope
/// O(log b)·OPT against an empirical clairvoyant lower bound on a uniform
/// random workload.
#[test]
fn uniform_case_cost_within_marking_envelope() {
    let n = 10usize;
    let b = 4usize;
    let dm = Arc::new(DistanceMatrix::uniform(n));
    let trace = rdcn::traces::uniform_trace(n, 20_000, 17);

    let mut rbma = Rbma::new(dm.clone(), b, 1, RemovalMode::Strict, 3);
    let report = run(&mut rbma, &dm, 1, &trace.requests, &SimConfig::default());
    // Uniform model: every request costs 1 routed either way; the *excess*
    // over |σ| is the reconfiguration traffic. Each special miss causes at
    // most 3 changes (evict at u, evict at v, insert), so excess ≤ 3|σ|
    // even on this structure-free worst case.
    let excess = report.total.total_cost() as f64 - trace.len() as f64;
    assert!(excess >= 0.0);
    assert!(
        excess < 3.0 * trace.len() as f64,
        "uniform-case excess {excess} exceeds the 3-changes-per-request envelope"
    );

    // On a skewed workload the same configuration must reconfigure far
    // less: structure is what the algorithm converts into savings.
    let hot = rdcn::traces::hotspot_trace(n, 20_000, 4, 0.9, 3);
    let mut rbma_hot = Rbma::new(dm.clone(), b, 1, RemovalMode::Strict, 3);
    let hot_report = run(&mut rbma_hot, &dm, 1, &hot.requests, &SimConfig::default());
    let hot_excess = hot_report.total.total_cost() as f64 - hot.len() as f64;
    assert!(
        hot_excess * 2.0 < excess,
        "skewed workload ({hot_excess}) should reconfigure far less than uniform ({excess})"
    );
}

//! Smoke tests mirroring the core path of each of the seven `examples/`
//! binaries, at reduced scale, through the `rdcn::` facade — so a facade
//! re-export drifting away from the crates (or an example's pipeline
//! breaking) fails `cargo test` instead of surfacing only when someone runs
//! the example. CI additionally runs the example binaries themselves; these
//! tests keep the coverage inside the tier-1 command.

use rdcn::core::algorithms::rbma::{Rbma, RemovalMode};
use rdcn::core::algorithms::static_offline::{so_bma_matching, static_routing_cost};
use rdcn::core::algorithms::AlgorithmKind;
use rdcn::core::analysis::link_load_comparison;
use rdcn::core::sweep::{run_jobs, Job};
use rdcn::core::{run, OnlineScheduler, SimConfig};
use rdcn::matching::coloring::{assign_switches, validate_coloring};
use rdcn::matching::edge_coloring;
use rdcn::paging::adversary::{uniform_sequence, Chaser};
use rdcn::paging::{run_policy, Belady, Lru, Marking};
use rdcn::topology::{builders, DistanceMatrix, Pair};
use rdcn::traces::{
    facebook_cluster_source, facebook_cluster_trace, hotspot_trace, microsoft_trace, uniform_trace,
    zipf_pair_trace, FacebookCluster, MicrosoftParams, RequestSource, TraceSpec, TraceStats,
};
use std::sync::Arc;

/// `examples/quickstart.rs`: fat-tree → Facebook trace → R-BMA vs Oblivious.
#[test]
fn quickstart_core_path() {
    let net = builders::fat_tree_with_racks(16);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    let mut trace = facebook_cluster_source(FacebookCluster::Database, 16, 10_000, 42);
    let (b, alpha) = (4, 10);
    let config = SimConfig {
        checkpoints: SimConfig::evenly_spaced(trace.len(), 4),
        ..Default::default()
    };

    let mut rbma = Rbma::new(dm.clone(), b, alpha, RemovalMode::Lazy, 7);
    let report = run(&mut rbma, &dm, alpha, &mut trace, &config);

    trace.reset();
    let mut oblivious = AlgorithmKind::Oblivious.build_online(dm.clone(), b, alpha, 0);
    let baseline = run(oblivious.as_mut(), &dm, alpha, &mut trace, &config);

    assert_eq!(report.checkpoints.len(), 4);
    assert!(report.total.matched_fraction() > 0.0);
    assert!(
        report.total.routing_cost < baseline.total.routing_cost,
        "R-BMA should beat the no-matching baseline on a skewed trace"
    );
    // The JSON emission path the example prints.
    let json = rdcn::util::json::to_json_string(&report).expect("report serializes");
    assert!(json.contains("\"routing_cost\""));
}

/// `examples/datacenter_comparison.rs`: sweep fan-out plus offline SO-BMA.
#[test]
fn datacenter_comparison_core_path() {
    let racks = 20;
    let net = builders::fat_tree_with_racks(racks);
    let dm = Arc::new(DistanceMatrix::between_racks_parallel(&net, 2));
    let spec = TraceSpec::Facebook {
        cluster: FacebookCluster::Database,
        num_racks: racks,
        len: 8_000,
        seed: 11,
    };
    let alpha = 10u64;

    let mut jobs = Vec::new();
    for algorithm in [
        AlgorithmKind::Rbma { lazy: true },
        AlgorithmKind::Bma,
        AlgorithmKind::Rotor { period: 100 },
    ] {
        jobs.push(Job {
            algorithm,
            b: 4,
            alpha,
            seed: 1,
            checkpoints: vec![],
            trace: spec.clone(),
        });
    }
    jobs.push(Job {
        algorithm: AlgorithmKind::Oblivious,
        b: 1,
        alpha,
        seed: 1,
        checkpoints: vec![],
        trace: spec.clone(),
    });
    let reports = run_jobs(&dm, &jobs, 3);
    assert_eq!(reports.len(), jobs.len());
    let oblivious_cost = reports.last().unwrap().total.routing_cost;
    assert!(oblivious_cost > 0);

    let trace = spec.as_trace();
    let matching = so_bma_matching(&dm, &trace.requests, 4);
    let cost = static_routing_cost(&dm, &trace.requests, &matching);
    assert!(
        cost < oblivious_cost,
        "offline static matching must save routing cost"
    );
}

/// `examples/adversarial_gap.rs`: chaser vs LRU, uniform nemesis vs marking.
#[test]
fn adversarial_gap_core_path() {
    let k = 8;
    let len = 4_000;
    let mut lru = Lru::new(k);
    let (seq, lru_faults) = Chaser::new(k).drive(&mut lru, len);
    assert_eq!(seq.len(), len);
    let opt = Belady::total_faults(k, &seq).max(1);
    let det_ratio = lru_faults as f64 / opt as f64;

    let useq = uniform_sequence(k, len, 99);
    let uopt = Belady::total_faults(k, &useq).max(1);
    let mark = run_policy(&mut Marking::new(k, 0), &useq).faults as f64;
    let rand_ratio = mark / uopt as f64;

    assert!(
        det_ratio > rand_ratio,
        "adaptive chaser must hurt deterministic LRU ({det_ratio:.2}) more than the uniform \
         nemesis hurts randomized marking ({rand_ratio:.2})"
    );

    // Layer 2 of the example (star-of-pairs nemesis table).
    let table = dcn_bench::lower_bound_gap(0.25, 0, rdcn::core::sweep::ShardSpec::full());
    assert!(!table.to_markdown().is_empty());
}

/// `examples/link_load.rs`: final-matching link loads under ECMP.
#[test]
fn link_load_core_path() {
    let racks = 16;
    let (b, alpha) = (4, 10);
    let net = builders::fat_tree_with_racks(racks);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    let trace = facebook_cluster_trace(FacebookCluster::Database, racks, 6_000, 3);

    let mut s = AlgorithmKind::Rbma { lazy: true }.build_online(dm.clone(), b, alpha, 1);
    run(
        s.as_mut(),
        &dm,
        alpha,
        &trace.requests,
        &SimConfig::default(),
    );
    let matching: Vec<Pair> = s.matching().edges().collect();
    assert!(!matching.is_empty());

    let cmp = link_load_comparison(&net, &trace.requests, &matching);
    assert!(cmp.with_matching.optical_traffic > 0.0);
    assert!(
        cmp.with_matching.fixed_hop_traffic < cmp.oblivious.fixed_hop_traffic,
        "a non-empty matching must offload fixed-network hop traffic"
    );
}

/// `examples/switch_scheduling.rs`: R-BMA matching → edge coloring → switches.
#[test]
fn switch_scheduling_core_path() {
    let racks = 16;
    let (b, alpha) = (4, 10);
    let net = builders::fat_tree_with_racks(racks);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    let trace = facebook_cluster_trace(FacebookCluster::WebService, racks, 6_000, 5);

    let mut rbma = Rbma::new(dm.clone(), b, alpha, RemovalMode::Lazy, 3);
    run(
        &mut rbma,
        &dm,
        alpha,
        &trace.requests,
        &SimConfig::default(),
    );
    let matching: Vec<Pair> = rbma.matching().edges().collect();
    assert!(!matching.is_empty());

    let colors = edge_coloring(racks, &matching);
    let used = validate_coloring(&matching, &colors).expect("coloring is proper");
    assert!(used as usize <= b + 1, "Vizing bound violated");

    let switches = assign_switches(racks, &matching);
    for (s, edges) in switches.iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        for e in edges {
            assert!(
                seen.insert(e.lo()) && seen.insert(e.hi()),
                "switch {s} carries a non-matching"
            );
        }
    }
}

/// `examples/demand_drift.rs`: demand-aware static design vs drifting
/// traffic — beats Oblivious on its own matrix, loses ground to R-BMA as
/// drift grows.
#[test]
fn demand_drift_core_path() {
    use rdcn::demand::{DemandAware, DemandMatrix, MatrixSequence, MicrosoftParams};

    let racks = 20;
    let requests = 12_000;
    let (b, alpha) = (6usize, 10u64);
    let net = builders::fat_tree_with_racks(racks);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    let base = DemandMatrix::microsoft(racks, MicrosoftParams::default(), 1).normalized();
    let drifted = DemandMatrix::microsoft(racks, MicrosoftParams::default(), 2).normalized();

    // λ = 0 (traffic from the forecast) and λ = 1 (fully drifted).
    let mut savings = Vec::new(); // (da_saving, rbma_saving) per λ
    for (li, lambda) in [0.0, 1.0].into_iter().enumerate() {
        let served = DemandMatrix::blend(&base, &drifted, lambda);
        let jobs: Vec<Job> = [
            AlgorithmKind::demand_aware(base.clone()),
            AlgorithmKind::Rbma { lazy: true },
            AlgorithmKind::Oblivious,
        ]
        .into_iter()
        .map(|algorithm| Job {
            algorithm,
            b,
            alpha,
            seed: 7,
            checkpoints: vec![],
            trace: TraceSpec::matrix(served.clone(), requests, 40 + li as u64),
        })
        .collect();
        let r = run_jobs(&dm, &jobs, 3);
        assert_eq!(r[0].algorithm, "DemandAware");
        assert_eq!(
            r[0].total.reconfigurations, 0,
            "static design never reconfigures"
        );
        let oblivious = r[2].total.routing_cost as f64;
        savings.push((
            1.0 - r[0].total.routing_cost as f64 / oblivious,
            1.0 - r[1].total.routing_cost as f64 / oblivious,
        ));
    }
    assert!(
        savings[0].0 > 0.2,
        "on its own matrix the static design must clearly beat Oblivious \
         (saving {:.3})",
        savings[0].0
    );
    assert!(
        savings[0].0 > savings[1].0 + 0.05,
        "drift must erode the static design's saving: {savings:?}"
    );
    let gap_at = |i: usize| savings[i].1 - savings[i].0;
    assert!(
        gap_at(1) > gap_at(0) + 0.05,
        "the static design must lose ground to R-BMA as drift grows: {savings:?}"
    );

    // The drifting-sequence stream of part 2, plus hedged-build determinism.
    let seq = MatrixSequence::drifting(&base, &drifted, 4_000, 4);
    let spec = TraceSpec::sequence(seq, 9);
    let job = Job {
        algorithm: AlgorithmKind::demand_aware_hedged(vec![base.clone(), drifted.clone()]),
        b,
        alpha,
        seed: 0,
        checkpoints: vec![2_000],
        trace: spec.clone(),
    };
    let r = run_jobs(&dm, std::slice::from_ref(&job), 2);
    assert_eq!(r[0].algorithm, "DemandAware(hedged)");
    assert_eq!(r[0].trace, spec.name());
    assert_eq!(r[0].total.requests, 4_000);
    let hedged = DemandAware::hedged(vec![base.clone(), drifted.clone()]);
    assert_eq!(
        hedged.build(&dm, b),
        hedged.build(&dm, b),
        "hedged build is deterministic"
    );
    // The JSON path the example prints.
    assert!(base.to_json().contains("\"num_racks\":20"));
}

/// `examples/trace_analysis.rs`: structure statistics for every generator.
#[test]
fn trace_analysis_core_path() {
    let n = 30;
    let len = 10_000;
    let traces = [
        facebook_cluster_trace(FacebookCluster::Database, n, len, 1),
        facebook_cluster_trace(FacebookCluster::Hadoop, n, len, 1),
        microsoft_trace(20, len, MicrosoftParams::default(), 1),
        uniform_trace(n, len, 1),
        hotspot_trace(n, len, 4, 0.8, 1),
        zipf_pair_trace(n, len, 1.2, 1),
    ];
    for trace in &traces {
        let stats = TraceStats::compute(trace);
        assert_eq!(stats.total_requests as usize, trace.len());
        assert!(stats.distinct_pairs > 0);
        assert!((0.0..=1.0).contains(&stats.pair_gini), "gini out of range");
        let cov = stats.topk_partner_coverage(trace, 6);
        assert!((0.0..=1.0 + 1e-9).contains(&cov));
    }
    // Skew ordering: Facebook Database is more skewed than uniform traffic.
    let fb = TraceStats::compute(&traces[0]);
    let uni = TraceStats::compute(&traces[3]);
    assert!(fb.pair_gini > uni.pair_gini);
}

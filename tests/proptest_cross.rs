//! Property-based integration tests across crates: random traces, random
//! parameters — the invariants must hold for *all* of them.

use proptest::prelude::*;
use rdcn::core::algorithms::AlgorithmKind;
use rdcn::core::{run, SimConfig};
use rdcn::matching::blossom::max_weight_matching_pairs;
use rdcn::matching::brute::brute_force_max_weight_b_matching;
use rdcn::matching::greedy::matching_weight;
use rdcn::matching::WeightedEdge;
use rdcn::topology::{builders, DistanceMatrix, Pair};
use rdcn::traces::Trace;
use std::sync::Arc;

/// Strategy: a random trace over `n` racks.
fn trace_strategy(n: u32, max_len: usize) -> impl Strategy<Value = Vec<Pair>> {
    prop::collection::vec((0..n, 0..n - 1), 1..max_len).prop_map(move |raw| {
        raw.into_iter()
            .map(|(a, b)| {
                let b = if b >= a { b + 1 } else { b };
                Pair::new(a, b)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_scheduler_respects_invariants_on_random_traces(
        requests in trace_strategy(12, 600),
        b in 1usize..5,
        alpha in 1u64..20,
        seed in 0u64..1000,
        lazy in any::<bool>(),
    ) {
        let net = builders::fat_tree_with_racks(12);
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        let trace = Trace::new(12, requests, "prop");
        for algorithm in [
            AlgorithmKind::Rbma { lazy },
            AlgorithmKind::Bma,
        ] {
            let mut s = algorithm.build_with_trace(dm.clone(), b, alpha, seed, &trace.requests);
            let config = SimConfig { verify_every: 97, ..Default::default() };
            let report = run(s.as_mut(), &dm, alpha, &trace.requests, &config);
            s.matching().assert_valid();
            // Degree bound.
            for v in 0..12u32 {
                prop_assert!(s.matching().degree(v) <= b);
            }
            // Cost decomposition: ℓ ∈ {2, 4} on a fat-tree, so routing cost
            // is bounded between the all-matched and all-remote extremes.
            let t = report.total;
            prop_assert!(t.routing_cost >= t.requests);
            prop_assert!(t.routing_cost <= 4 * t.requests);
            prop_assert_eq!(t.reconfig_cost, alpha * t.reconfigurations);
            // Matching size consistent with net reconfigurations: adds -
            // removes == |M| (every change was reported).
            prop_assert!(t.reconfigurations >= s.matching().len() as u64);
        }
    }

    #[test]
    fn blossom_equals_brute_force_on_random_weighted_graphs(
        edges in prop::collection::vec((0u32..7, 0u32..6, 1i64..50), 1..16),
    ) {
        let mut seen = std::collections::HashSet::new();
        let edges: Vec<WeightedEdge> = edges
            .into_iter()
            .map(|(a, b, w)| {
                let b = if b >= a { b + 1 } else { b };
                (a.min(b), a.max(b), w)
            })
            .filter(|&(a, b, _)| seen.insert((a, b)))
            .map(|(a, b, w)| WeightedEdge::new(a, b, w))
            .collect();
        prop_assume!(!edges.is_empty());
        let pairs = max_weight_matching_pairs(7, &edges);
        let got = matching_weight(&pairs, &edges);
        let (opt, _) = brute_force_max_weight_b_matching(7, &edges, 1);
        prop_assert_eq!(got, opt);
    }

    #[test]
    fn rotor_serves_every_pair_eventually(
        n in 4usize..10,
        period in 1u64..20,
    ) {
        let n = n - (n % 2); // even racks
        prop_assume!(n >= 4);
        let mut rotor = rdcn::core::algorithms::rotor::Rotor::new(n, 1, period);
        use rdcn::core::OnlineScheduler;
        // Request one fixed pair long enough to cover a full rotation.
        let pair = Pair::new(0, 1);
        let rounds = n - 1;
        let horizon = period as usize * rounds * 2 + 1;
        let mut hits = 0u64;
        for _ in 0..horizon {
            hits += rotor.serve(pair).was_matched as u64;
        }
        // The pair's round is active b/rounds of the time.
        prop_assert!(hits > 0, "pair never served over a full rotation");
    }
}

//! Cross-crate integration tests: every scheduler on every workload must
//! respect the model invariants of §1.1.

use rdcn::core::algorithms::AlgorithmKind;
use rdcn::core::sweep::{run_jobs_sequential, Job};
use rdcn::core::{run, SimConfig};
use rdcn::topology::{builders, DistanceMatrix};
use rdcn::traces::{
    facebook_cluster_trace, microsoft_trace, uniform_trace, FacebookCluster, MicrosoftParams,
    Trace, TraceSpec,
};
use std::sync::Arc;

fn all_algorithms() -> Vec<AlgorithmKind> {
    vec![
        AlgorithmKind::Oblivious,
        AlgorithmKind::Rbma { lazy: true },
        AlgorithmKind::Rbma { lazy: false },
        AlgorithmKind::Bma,
        AlgorithmKind::Rotor { period: 50 },
        AlgorithmKind::PredictiveRbma { noise: 0.5 },
        AlgorithmKind::Periodic { period: 500 },
    ]
}

fn workloads(n: usize, len: usize) -> Vec<Trace> {
    vec![
        facebook_cluster_trace(FacebookCluster::Database, n, len, 1),
        facebook_cluster_trace(FacebookCluster::Hadoop, n, len, 2),
        microsoft_trace(n, len, MicrosoftParams::default(), 3),
        uniform_trace(n, len, 4),
    ]
}

#[test]
fn degree_bounds_hold_for_every_algorithm_and_workload() {
    let n = 24;
    let net = builders::fat_tree_with_racks(n);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    for trace in workloads(n, 6000) {
        for algorithm in all_algorithms() {
            for b in [1usize, 2, 5] {
                let mut s = algorithm.build_with_trace(dm.clone(), b, 10, 7, &trace.requests);
                let config = SimConfig {
                    verify_every: 500,
                    ..Default::default()
                };
                let report = run(s.as_mut(), &dm, 10, &trace.requests, &config);
                s.matching().assert_valid();
                assert_eq!(report.total.requests, trace.len() as u64);
                for v in 0..n as u32 {
                    assert!(
                        s.matching().degree(v) <= b,
                        "{} b={b} on {}: degree violated at {v}",
                        algorithm.label(),
                        trace.name
                    );
                }
            }
        }
    }
}

#[test]
fn cost_accounting_is_internally_consistent() {
    // Replaying deterministically must give identical cost totals, and the
    // decomposition routing = matched·1 + unmatched·ℓ must hold.
    let n = 20;
    let net = builders::leaf_spine(n, 4); // ℓ ≡ 2: easy arithmetic
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    let spec = TraceSpec::Facebook {
        cluster: FacebookCluster::Database,
        num_racks: n,
        len: 8000,
        seed: 9,
    };
    for algorithm in all_algorithms() {
        let job = Job {
            algorithm: algorithm.clone(),
            b: 3,
            alpha: 8,
            seed: 5,
            checkpoints: vec![4000],
            trace: spec.clone(),
        };
        let a = run_jobs_sequential(&dm, std::slice::from_ref(&job));
        let b = run_jobs_sequential(&dm, std::slice::from_ref(&job));
        assert_eq!(
            a[0].total.routing_cost,
            b[0].total.routing_cost,
            "{}",
            algorithm.label()
        );
        assert_eq!(a[0].total.reconfigurations, b[0].total.reconfigurations);

        let t = &a[0].total;
        let unmatched = t.requests - t.matched_requests;
        assert_eq!(
            t.routing_cost,
            t.matched_requests + 2 * unmatched,
            "{}: routing decomposition broken",
            algorithm.label()
        );
        assert_eq!(t.reconfig_cost, 8 * t.reconfigurations);
    }
}

#[test]
fn demand_aware_algorithms_beat_oblivious_on_skewed_traffic() {
    let n = 50;
    let net = builders::fat_tree_with_racks(n);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    let spec = TraceSpec::Facebook {
        cluster: FacebookCluster::Database,
        num_racks: n,
        len: 40_000,
        seed: 12,
    };
    let jobs: Vec<Job> = [
        AlgorithmKind::Oblivious,
        AlgorithmKind::Rbma { lazy: true },
        AlgorithmKind::Bma,
    ]
    .into_iter()
    .map(|algorithm| Job {
        algorithm,
        b: 12,
        alpha: 10,
        seed: 3,
        checkpoints: vec![],
        trace: spec.clone(),
    })
    .collect();
    let reports = run_jobs_sequential(&dm, &jobs);
    let oblivious = reports[0].total.routing_cost;
    for r in &reports[1..] {
        assert!(
            r.total.routing_cost < oblivious * 9 / 10,
            "{} ({}) should save >10% vs oblivious ({oblivious})",
            r.algorithm,
            r.total.routing_cost
        );
    }
}

#[test]
fn rbma_and_bma_have_comparable_routing_cost() {
    // The paper's headline empirical claim (Figs. 1a-4a): R-BMA ≈ BMA.
    let n = 50;
    let net = builders::fat_tree_with_racks(n);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    let spec = TraceSpec::Facebook {
        cluster: FacebookCluster::WebService,
        num_racks: n,
        len: 40_000,
        seed: 21,
    };
    let jobs: Vec<Job> = (0..3u64)
        .map(|seed| Job {
            algorithm: AlgorithmKind::Rbma { lazy: true },
            b: 12,
            alpha: 10,
            seed,
            checkpoints: vec![],
            trace: spec.clone(),
        })
        .chain(std::iter::once(Job {
            algorithm: AlgorithmKind::Bma,
            b: 12,
            alpha: 10,
            seed: 0,
            checkpoints: vec![],
            trace: spec.clone(),
        }))
        .collect();
    let reports = run_jobs_sequential(&dm, &jobs);
    let rbma_avg: f64 = reports[..3]
        .iter()
        .map(|r| r.total.routing_cost as f64)
        .sum::<f64>()
        / 3.0;
    let bma = reports[3].total.routing_cost as f64;
    let rel = (rbma_avg - bma).abs() / bma;
    assert!(
        rel < 0.15,
        "R-BMA ({rbma_avg}) and BMA ({bma}) should be within 15% (got {:.1}%)",
        rel * 100.0
    );
}

#[test]
fn more_switches_monotonically_help() {
    let n = 40;
    let net = builders::fat_tree_with_racks(n);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    let spec = TraceSpec::Facebook {
        cluster: FacebookCluster::Database,
        num_racks: n,
        len: 30_000,
        seed: 8,
    };
    let mut last = u64::MAX;
    for b in [2usize, 6, 12, 18] {
        let job = Job {
            algorithm: AlgorithmKind::Rbma { lazy: true },
            b,
            alpha: 10,
            seed: 2,
            checkpoints: vec![],
            trace: spec.clone(),
        };
        let r = run_jobs_sequential(&dm, &[job]);
        let cost = r[0].total.routing_cost;
        assert!(
            cost <= last.saturating_add(last / 50),
            "routing cost should not grow with b: b={b} cost={cost} prev={last}"
        );
        last = cost;
    }
}

//! # rdcn — Randomized Online b-Matching for Reconfigurable Optical Datacenters
//!
//! A from-scratch Rust reproduction of *“Optimizing Reconfigurable Optical
//! Datacenters: The Power of Randomization”* (Bienkowski, Fuchssteiner,
//! Schmid; SC 2023 / arXiv:2209.01863).
//!
//! This crate is the public facade: it re-exports the workspace crates under
//! stable module names. See `README.md` for a tour and `DESIGN.md` for the
//! system inventory and experiment index.
//!
//! * [`topology`] — fixed networks (fat-tree, Clos, star, …) + distances.
//! * [`paging`] — (b,a)-paging algorithms incl. randomized marking.
//! * [`matching`] — b-matching structures, blossom max-weight matching,
//!   edge coloring.
//! * [`demand`] — traffic matrices, temporal matrix sequences, and
//!   demand-aware static baselines (COUDER-style).
//! * [`traces`] — synthetic datacenter workloads + trace statistics.
//! * [`core`] — R-BMA, BMA, SO-BMA, the cost model and the simulator.
//! * [`adversary`] — coverage-guided adversarial trace search over
//!   mutation genomes, with a replayable regression corpus.
//! * [`telemetry`] — zero-overhead counters/gauges/histograms riding the
//!   hot paths (reports stay byte-identical with the sink on or off).
//! * [`util`] — hashing, sampling sets, statistics, CSV/JSON.
//!
//! # Quickstart
//!
//! ```
//! use rdcn::core::algorithms::rbma::{Rbma, RemovalMode};
//! use rdcn::core::{run, SimConfig};
//! use rdcn::topology::{builders, DistanceMatrix};
//! use rdcn::traces::{facebook_cluster_source, FacebookCluster, RequestSource};
//! use std::sync::Arc;
//!
//! // 1. Fixed network: a fat-tree with 16 racks.
//! let net = builders::fat_tree_with_racks(16);
//! let dm = Arc::new(DistanceMatrix::between_racks(&net));
//!
//! // 2. Workload: a bursty, skewed Facebook-like request stream — lazy,
//! //    seeded and resettable, O(1) memory regardless of length.
//! let mut trace = facebook_cluster_source(FacebookCluster::Database, 16, 10_000, 1);
//! assert_eq!(trace.len(), 10_000);
//!
//! // 3. Algorithm: R-BMA with b = 4 optical switches, α = 10.
//! let alpha = 10;
//! let mut rbma = Rbma::new(dm.clone(), 4, alpha, RemovalMode::Lazy, 7);
//!
//! // 4. Simulate and inspect costs (`trace.materialize()` would recover an
//! //    eager `Trace` for offline baselines).
//! let report = run(&mut rbma, &dm, alpha, &mut trace, &SimConfig::default());
//! println!("routing cost: {}", report.total.routing_cost);
//! assert!(report.total.matched_fraction() > 0.0);
//! ```

pub use dcn_adversary as adversary;
pub use dcn_core as core;
pub use dcn_demand as demand;
pub use dcn_matching as matching;
pub use dcn_paging as paging;
pub use dcn_telemetry as telemetry;
pub use dcn_topology as topology;
pub use dcn_traces as traces;
pub use dcn_util as util;

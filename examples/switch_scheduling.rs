//! From b-matching to physical switches: run R-BMA, take its final
//! matching, and decompose it into per-switch configurations with
//! Misra–Gries edge coloring (each optical circuit switch realizes one
//! matching — Vizing's theorem bounds the switch count by Δ+1 ≤ b+1).
//!
//! ```text
//! cargo run --release --example switch_scheduling
//! ```

use rdcn::core::algorithms::rbma::{Rbma, RemovalMode};
use rdcn::core::{run, OnlineScheduler, SimConfig};
use rdcn::matching::coloring::{assign_switches, validate_coloring};
use rdcn::matching::edge_coloring;
use rdcn::topology::{builders, DistanceMatrix, Pair};
use rdcn::traces::{facebook_cluster_trace, FacebookCluster};
use std::sync::Arc;

fn main() {
    let racks = 48;
    let b = 6;
    let alpha = 10;
    let net = builders::fat_tree_with_racks(racks);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    let trace = facebook_cluster_trace(FacebookCluster::WebService, racks, 60_000, 5);

    let mut rbma = Rbma::new(dm.clone(), b, alpha, RemovalMode::Lazy, 3);
    let report = run(
        &mut rbma,
        &dm,
        alpha,
        &trace.requests,
        &SimConfig::default(),
    );
    let matching: Vec<Pair> = rbma.matching().edges().collect();
    println!(
        "R-BMA final state after {} requests: {} matching edges, max degree {}",
        report.total.requests,
        matching.len(),
        (0..racks as u32)
            .map(|v| rbma.matching().degree(v))
            .max()
            .unwrap_or(0),
    );

    let colors = edge_coloring(racks, &matching);
    let used = validate_coloring(&matching, &colors).expect("coloring is proper");
    println!(
        "Misra-Gries colored the matching with {used} colors (Vizing bound: b+1 = {}).",
        b + 1
    );

    let switches = assign_switches(racks, &matching);
    println!("\nper-switch configurations:");
    for (s, edges) in switches.iter().enumerate() {
        let preview: Vec<String> = edges.iter().take(6).map(|e| e.to_string()).collect();
        println!(
            "  switch {s}: {:>3} circuits  {}{}",
            edges.len(),
            preview.join(" "),
            if edges.len() > 6 { " …" } else { "" }
        );
    }

    // Each switch must carry a matching (no rack twice).
    for (s, edges) in switches.iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        for e in edges {
            assert!(
                seen.insert(e.lo()) && seen.insert(e.hi()),
                "switch {s} overloaded"
            );
        }
    }
    println!("\nall switch configurations verified to be matchings ✓");
}

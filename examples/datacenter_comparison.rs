//! Full §3-style comparison on one cluster: R-BMA vs BMA vs SO-BMA vs
//! Oblivious vs Rotor, across b values — a miniature of the paper's
//! Figures 1a/1c plus the rotor reference point.
//!
//! ```text
//! cargo run --release --example datacenter_comparison [racks] [requests]
//! ```

use rdcn::core::algorithms::static_offline::{so_bma_matching, static_routing_cost};
use rdcn::core::algorithms::AlgorithmKind;
use rdcn::core::sweep::{run_jobs, Job};
use rdcn::topology::{builders, DistanceMatrix};
use rdcn::traces::{FacebookCluster, TraceSpec};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let racks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let requests: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);

    let net = builders::fat_tree_with_racks(racks);
    let dm = Arc::new(DistanceMatrix::between_racks_parallel(&net, 4));
    // The workload is a *description*: every online job below streams its
    // own copy in-place (O(1) memory); only offline SO-BMA materializes it.
    let spec = TraceSpec::Facebook {
        cluster: FacebookCluster::Database,
        num_racks: racks,
        len: requests,
        seed: 11,
    };
    let alpha = 10u64;
    println!(
        "workload: {} ({} requests, {racks} racks, α={alpha})\n",
        spec.name(),
        spec.len()
    );

    let bs = [6usize, 12, 18];
    let mut jobs = Vec::new();
    for algorithm in [
        AlgorithmKind::Rbma { lazy: true },
        AlgorithmKind::Bma,
        AlgorithmKind::Rotor { period: 100 },
    ] {
        for &b in &bs {
            jobs.push(Job {
                algorithm: algorithm.clone(),
                b,
                alpha,
                seed: 1,
                checkpoints: vec![],
                trace: spec.clone(),
            });
        }
    }
    jobs.push(Job {
        algorithm: AlgorithmKind::Oblivious,
        b: 1,
        alpha,
        seed: 1,
        checkpoints: vec![],
        trace: spec.clone(),
    });

    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let reports = run_jobs(&dm, &jobs, threads);

    let oblivious_cost = reports.last().expect("oblivious job").total.routing_cost;
    println!(
        "{:<16} {:>4} {:>14} {:>14} {:>12} {:>10}",
        "algorithm", "b", "routing", "reconfig", "total", "vs obliv"
    );
    for r in &reports {
        println!(
            "{:<16} {:>4} {:>14} {:>14} {:>12} {:>9.1}%",
            r.algorithm,
            r.b,
            r.total.routing_cost,
            r.total.reconfig_cost,
            r.total.total_cost(),
            100.0 * (1.0 - r.total.routing_cost as f64 / oblivious_cost as f64),
        );
    }

    // SO-BMA (offline static, whole trace) at each b.
    let trace = spec.as_trace();
    for &b in &bs {
        let matching = so_bma_matching(&dm, &trace.requests, b);
        let cost = static_routing_cost(&dm, &trace.requests, &matching);
        println!(
            "{:<16} {:>4} {:>14} {:>14} {:>12} {:>9.1}%",
            "SO-BMA",
            b,
            cost,
            0,
            cost,
            100.0 * (1.0 - cost as f64 / oblivious_cost as f64),
        );
    }
    println!(
        "\n(SO-BMA is offline: it sees the whole trace and pays no reconfiguration cost;\n\
         the online algorithms adapt on the fly. See Figs. 1c-4c for the regime analysis.)"
    );
}

//! Quickstart: build a fat-tree, generate a streaming workload, run R-BMA,
//! and read the cost report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rdcn::core::algorithms::oblivious::Oblivious;
use rdcn::core::algorithms::rbma::{Rbma, RemovalMode};
use rdcn::core::{run, SimConfig};
use rdcn::topology::{builders, DistanceMatrix};
use rdcn::traces::{facebook_cluster_source, FacebookCluster, RequestSource};
use std::sync::Arc;

fn main() {
    // A fat-tree datacenter with 32 top-of-rack switches.
    let net = builders::fat_tree_with_racks(32);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    println!(
        "fixed network: {} (racks: {}, mean rack distance: {:.2}, max: {})",
        net.name,
        dm.num_racks(),
        dm.mean_dist(),
        dm.max_dist()
    );

    // A bursty, skewed workload shaped like a Facebook database cluster —
    // a lazy request stream, O(1) memory no matter how long it runs.
    let mut trace = facebook_cluster_source(FacebookCluster::Database, 32, 100_000, 42);
    println!("workload: {} requests from {}", trace.len(), trace.name());

    // b = 8 optical circuit switches, reconfiguration cost α = 10.
    let (b, alpha) = (8, 10);
    let config = SimConfig {
        checkpoints: SimConfig::evenly_spaced(trace.len(), 4),
        ..Default::default()
    };

    let mut rbma = Rbma::new(dm.clone(), b, alpha, RemovalMode::Lazy, 7);
    let report = run(&mut rbma, &dm, alpha, &mut trace, &config);

    // Reset rewinds the seeded stream: the baseline replays the identical
    // request sequence.
    trace.reset();
    let mut oblivious = Oblivious::new(dm.num_racks(), b);
    let baseline = run(&mut oblivious, &dm, alpha, &mut trace, &config);

    println!("\n#requests | R-BMA routing | Oblivious routing");
    for (c, o) in report.checkpoints.iter().zip(&baseline.checkpoints) {
        println!(
            "{:>9} | {:>13} | {:>17}",
            c.requests, c.routing_cost, o.routing_cost
        );
    }
    let reduction = 1.0 - report.total.routing_cost as f64 / baseline.total.routing_cost as f64;
    println!(
        "\nR-BMA served {:.1}% of requests over matching edges,",
        100.0 * report.total.matched_fraction()
    );
    println!(
        "cutting routing cost by {:.1}% (reconfiguration cost paid: {}).",
        100.0 * reduction,
        report.total.reconfig_cost
    );
    println!("\nJSON report:\n{}", report.to_json());
}

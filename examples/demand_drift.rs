//! Demand drift vs a demand-aware static design: the COUDER-style
//! mis-estimation scenario the `repro_figures demand` target sweeps.
//!
//! A [`DemandAware`] b-matching is provisioned from a *forecast* matrix.
//! On traffic sampled from that matrix it beats Oblivious handily — but as
//! the served distribution drifts toward an independent matrix, the static
//! design decays while online R-BMA (which never saw any forecast) keeps
//! adapting. A hedged design provisioned against both matrices holds up the
//! worst case.
//!
//! ```text
//! cargo run --release --example demand_drift [racks] [requests]
//! ```

use rdcn::core::algorithms::AlgorithmKind;
use rdcn::core::sweep::{run_jobs, Job};
use rdcn::demand::{DemandMatrix, MatrixSequence, MicrosoftParams};
use rdcn::topology::{builders, DistanceMatrix};
use rdcn::traces::TraceSpec;
use rdcn::util::rngx::derive_seed;
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let racks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);
    let requests: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(60_000);
    let (b, alpha) = (6usize, 10u64);

    let net = builders::fat_tree_with_racks(racks);
    let dm = Arc::new(DistanceMatrix::between_racks_parallel(&net, 4));

    // The forecast the static design is built on, and the matrix the served
    // traffic drifts toward.
    let base = DemandMatrix::microsoft(racks, MicrosoftParams::default(), 1).normalized();
    let drifted = DemandMatrix::microsoft(racks, MicrosoftParams::default(), 2).normalized();
    println!(
        "forecast: {} (gini {:.2}, top-{} pairs carry {:.0}% of demand)",
        base.name(),
        base.gini(),
        racks * b / 2,
        100.0 * base.top_share(racks * b / 2),
    );
    println!("{racks} racks, b={b}, α={alpha}, {requests} requests per drift level\n");

    // Part 1: i.i.d. traffic at growing drift λ from the forecast.
    let algorithms = [
        AlgorithmKind::demand_aware(base.clone()),
        AlgorithmKind::demand_aware_hedged(vec![base.clone(), drifted.clone()]),
        AlgorithmKind::Rbma { lazy: true },
        AlgorithmKind::Oblivious,
    ];
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14}  (routing cost, as in Figs. 1a-4a;\n{:>68}",
        "drift λ", "DemandAware", "Hedged", "R-BMA", "Oblivious", "R-BMA reconfig spend in parens)"
    );
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    for (li, lambda) in [0.0, 0.25, 0.5, 0.75, 1.0].into_iter().enumerate() {
        let served = DemandMatrix::blend(&base, &drifted, lambda);
        let jobs: Vec<Job> = algorithms
            .iter()
            .map(|algorithm| Job {
                algorithm: algorithm.clone(),
                b,
                alpha,
                seed: 7,
                checkpoints: vec![],
                trace: TraceSpec::matrix(served.clone(), requests, derive_seed(0xD81F7, li as u64)),
            })
            .collect();
        let r = run_jobs(&dm, &jobs, threads);
        println!(
            "{:<8} {:>14} {:>14} {:>14} {:>14}",
            format!("λ={lambda}"),
            r[0].total.routing_cost,
            r[1].total.routing_cost,
            format!(
                "{} (+{})",
                r[2].total.routing_cost, r[2].total.reconfig_cost
            ),
            r[3].total.routing_cost,
        );
    }

    // Part 2: the same story as one continuous stream — a MatrixSequence
    // drifting from the forecast to the independent matrix, checkpointed.
    let seq = MatrixSequence::drifting(&base, &drifted, requests, 5);
    let spec = TraceSpec::sequence(seq, 0xD81F);
    let checkpoints = rdcn::core::SimConfig::evenly_spaced(requests, 5);
    let jobs: Vec<Job> = [
        AlgorithmKind::demand_aware(base.clone()),
        AlgorithmKind::Rbma { lazy: true },
    ]
    .into_iter()
    .map(|algorithm| Job {
        algorithm,
        b,
        alpha,
        seed: 7,
        checkpoints: checkpoints.clone(),
        trace: spec.clone(),
    })
    .collect();
    let reports = run_jobs(&dm, &jobs, threads);
    println!("\ndrifting stream ({}):", spec.name());
    println!(
        "{:<12} {:>14} {:>14}  (cumulative routing cost)",
        "requests", "DemandAware", "R-BMA"
    );
    for (da, rbma) in reports[0].checkpoints.iter().zip(&reports[1].checkpoints) {
        println!(
            "{:<12} {:>14} {:>14}",
            da.requests, da.routing_cost, rbma.routing_cost
        );
    }
    println!(
        "\n(The static design's per-request cost rises phase by phase as the \
         served matrix\nleaves its forecast behind; R-BMA re-learns each phase. \
         See `repro_figures demand`\nfor the full mis-estimation sweep and \
         DESIGN.md §4 for the experiment index.)"
    );

    // Demand matrices round-trip as CSV/JSON for external tooling.
    let json_len = base.to_json().len();
    println!("(forecast matrix serializes to {json_len} bytes of JSON)");
}

//! The bandwidth-tax view: how much fixed-network link load does each
//! scheduler's matching remove? Replays a workload with ECMP routing and
//! reports per-link load profiles — the physical quantity behind the
//! paper's hop-count cost model (§1.1).
//!
//! ```text
//! cargo run --release --example link_load
//! ```

use rdcn::core::algorithms::static_offline::so_bma_matching;
use rdcn::core::algorithms::AlgorithmKind;
use rdcn::core::analysis::link_load_comparison;
use rdcn::core::{run, SimConfig};
use rdcn::topology::{builders, DistanceMatrix, Pair};
use rdcn::traces::{facebook_cluster_trace, FacebookCluster};
use std::sync::Arc;

fn main() {
    let racks = 32;
    let b = 6;
    let alpha = 10;
    let net = builders::fat_tree_with_racks(racks);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    let trace = facebook_cluster_trace(FacebookCluster::Database, racks, 60_000, 3);
    println!(
        "workload: {} requests on {} | b={b}, α={alpha}\n",
        trace.len(),
        net.name
    );
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "matching from", "|M|", "max load", "mean load", "hop traffic", "Δ max"
    );

    // Online schedulers: replay their *final* matching statically to get a
    // comparable link-load snapshot.
    for algorithm in [
        AlgorithmKind::Rbma { lazy: true },
        AlgorithmKind::Bma,
        AlgorithmKind::Periodic { period: 5000 },
    ] {
        let mut s = algorithm.build_with_trace(dm.clone(), b, alpha, 1, &trace.requests);
        run(
            s.as_mut(),
            &dm,
            alpha,
            &trace.requests,
            &SimConfig::default(),
        );
        let matching: Vec<Pair> = s.matching().edges().collect();
        report(&net, &trace.requests, &matching, &algorithm.label());
    }

    // Offline SO-BMA matching.
    let matching = so_bma_matching(&dm, &trace.requests, b);
    report(&net, &trace.requests, &matching, "SO-BMA");

    // Oblivious reference.
    report(&net, &trace.requests, &[], "(none)");
}

fn report(net: &rdcn::topology::Network, requests: &[Pair], matching: &[Pair], label: &str) {
    let cmp = link_load_comparison(net, requests, matching);
    println!(
        "{:<18} {:>10} {:>12.1} {:>12.2} {:>12.0} {:>9.1}%",
        label,
        matching.len(),
        cmp.with_matching.max_fixed_load,
        cmp.with_matching.mean_fixed_load,
        cmp.with_matching.fixed_hop_traffic,
        100.0 * cmp.max_load_reduction(),
    );
}

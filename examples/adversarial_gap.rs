//! “The power of randomization”: the Θ(b) vs Θ(log b) separation, live.
//!
//! Layer 1 (paging, §2.2/§2.4 machinery): an adaptive chaser forces any
//! deterministic policy to fault on *every* request, while randomized
//! marking keeps its expected ratio near 2·H_k.
//!
//! Layer 2 (matching): the same story on the star-of-pairs nemesis against
//! the full schedulers, reported as excess cost over the all-matched ideal.
//!
//! ```text
//! cargo run --release --example adversarial_gap
//! ```

use rdcn::paging::adversary::{uniform_sequence, Chaser};
use rdcn::paging::{run_policy, Belady, Lru, Marking};

fn main() {
    println!("=== Layer 1: paging (cache size k, universe k+1) ===\n");
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>10}",
        "k", "LRU ratio", "MARK ratio", "2·H_k", "gap"
    );
    for k in [4usize, 8, 16, 32, 64] {
        let len = 4000 * k.max(8);
        // Adaptive chaser vs deterministic LRU.
        let mut lru = Lru::new(k);
        let (seq, lru_faults) = Chaser::new(k).drive(&mut lru, len);
        let opt = Belady::total_faults(k, &seq).max(1);
        let det_ratio = lru_faults as f64 / opt as f64;

        // Oblivious uniform nemesis vs randomized marking (5 seeds).
        let useq = uniform_sequence(k, len, 99);
        let uopt = Belady::total_faults(k, &useq).max(1);
        let mark: f64 = (0..5)
            .map(|s| run_policy(&mut Marking::new(k, s), &useq).faults as f64)
            .sum::<f64>()
            / 5.0;
        let rand_ratio = mark / uopt as f64;
        let h_k: f64 = (1..=k).map(|i| 1.0 / i as f64).sum();
        println!(
            "{k:>4} {det_ratio:>12.2} {rand_ratio:>12.2} {:>12.2} {:>9.1}x",
            2.0 * h_k,
            det_ratio / rand_ratio
        );
    }
    println!(
        "\nThe deterministic ratio tracks k (the cache size); the randomized one\n\
         tracks 2 ln k — an exponential improvement, Theorem 4's tight regime.\n"
    );

    println!("=== Layer 2: full schedulers on the star-of-pairs nemesis ===\n");
    let table = dcn_bench::lower_bound_gap(1.0, 0, rdcn::core::sweep::ShardSpec::full());
    println!("{}", table.to_markdown());
    println!(
        "BMA is driven by an adaptive chaser (it always requests a pair missing\n\
         from BMA's matching); R-BMA faces uniform random blocks. Excess = cost\n\
         above the all-matched ideal. The ratio grows with b ≈ b/log b."
    );
}

//! Workload structure analysis: quantify the spatial skew and temporal
//! locality of every built-in generator — the two properties (§3.1, citing
//! Avin et al. \[5\]) that decide how much reconfigurable links can help.
//!
//! Optionally analyzes a user-provided CSV trace (`src,dst` per line):
//!
//! ```text
//! cargo run --release --example trace_analysis [path/to/trace.csv]
//! ```

use rdcn::traces::csvio::load_trace;
use rdcn::traces::{
    facebook_cluster_trace, hotspot_trace, microsoft_trace, uniform_trace, zipf_pair_trace,
    FacebookCluster, MicrosoftParams, Trace, TraceStats,
};

fn analyze(trace: &Trace) {
    let stats = TraceStats::compute(trace);
    let cov18 = stats.topk_partner_coverage(trace, 18);
    let cov6 = stats.topk_partner_coverage(trace, 6);
    println!(
        "{:<34} {:>9} {:>8} {:>7.3} {:>10.1} {:>8.2} {:>8.2} {:>8.2}",
        trace.name,
        stats.total_requests,
        stats.distinct_pairs,
        stats.pair_gini,
        stats.median_reuse_distance,
        stats.top1pct_share,
        cov6,
        cov18,
    );
}

fn main() {
    let n = 100;
    let len = 100_000;
    println!(
        "{:<34} {:>9} {:>8} {:>7} {:>10} {:>8} {:>8} {:>8}",
        "trace", "requests", "pairs", "gini", "reuse~", "top1%", "cov(6)", "cov(18)"
    );
    analyze(&facebook_cluster_trace(
        FacebookCluster::Database,
        n,
        len,
        1,
    ));
    analyze(&facebook_cluster_trace(
        FacebookCluster::WebService,
        n,
        len,
        1,
    ));
    analyze(&facebook_cluster_trace(FacebookCluster::Hadoop, n, len, 1));
    analyze(&microsoft_trace(50, len, MicrosoftParams::default(), 1));
    analyze(&uniform_trace(n, len, 1));
    analyze(&hotspot_trace(n, len, 8, 0.8, 1));
    analyze(&zipf_pair_trace(n, len, 1.2, 1));

    for arg in std::env::args().skip(1) {
        match load_trace(std::path::Path::new(&arg), None) {
            Ok(trace) => analyze(&trace),
            Err(e) => eprintln!("could not load {arg}: {e}"),
        }
    }

    println!(
        "\ngini      = spatial skew of the pair-count distribution (0 uniform, 1 skewed)\n\
         reuse~    = median gap between repeat requests to a pair (small = bursty)\n\
         cov(k)    = average share of a rack's traffic covered by its top-k partners —\n\
                     the headroom available to a b-matching with b = k."
    );
}
